//! Criterion bench for the online serving tier: cache-hit latency vs
//! the uncached compile-and-probe path, mixed arrival streams, batched
//! admission, and serving under template churn.
//!
//! The headline comparison is `serve/hit` against `serve/uncached` at
//! the Exp-4 scale (1,000 templates): the hit path answers from the
//! plan-fingerprint cache with one epoch load, the uncached path is
//! `match_plan`'s full compile-and-probe per arrival. Stream benches
//! replay mixed arrivals — repeats, near-misses (plans that prune), and
//! cold plans — per-sample, so the shim's p50/p99 percentiles in
//! `GALO_BENCH_JSON` (CI's `BENCH_serve.json`) are true arrival-latency
//! percentiles. `serve/churn` interleaves template publishes with the
//! stream, paying the epoch-invalidation re-match each round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use galo_bench::{inflate_kb, learning_config};
use galo_core::{match_plan, KnowledgeBase, MatchConfig, ServingTier};
use galo_optimizer::Optimizer;
use galo_qgm::Qgm;
use galo_workloads::tpcds;

struct Setup {
    w: galo_workloads::Workload,
    kb: KnowledgeBase,
    plans: Vec<Qgm>,
}

/// One KB at the Exp-4 scale (1,000 templates) plus a plan mix: learned
/// plans that match, wider plans that probe and miss, and plans whose
/// segments prune in the signature index (the near-misses).
fn setup() -> Setup {
    let w = tpcds::workload();
    let kb = KnowledgeBase::new();
    let small = galo_workloads::Workload {
        name: w.name.clone(),
        db: w.db.clone(),
        queries: w.queries[..10].to_vec(),
    };
    galo_core::learn_workload(&small, &kb, &learning_config(true));
    inflate_kb(&kb, &w.db, &w.queries[..6], 1000);

    let optimizer = Optimizer::new(&w.db);
    let plans: Vec<Qgm> = w
        .queries
        .iter()
        .take(16)
        .filter_map(|q| optimizer.optimize(q).ok())
        .collect();
    Setup { w, kb, plans }
}

/// A repeat-heavy arrival order over `n_plans` distinct plans: ~75% of
/// arrivals are the two hottest plans, the rest cycle through the tail
/// (cold plans and near-misses included). Deterministic — benches replay
/// the same stream every sample.
fn arrival_stream(len: usize, n_plans: usize) -> Vec<usize> {
    (0..len)
        .map(|k| if k % 4 < 3 { k % 2 } else { (k / 4) % n_plans })
        .collect()
}

/// The headline pair: per-arrival latency of the warmed cache-hit path
/// vs the uncached `match_plan` on the same plan. Large sample counts
/// make the shim's p50/p99 true single-serve percentiles.
fn bench_hit_vs_uncached(c: &mut Criterion) {
    let s = setup();
    let cfg = MatchConfig::default();
    let tier = ServingTier::new(&s.w.db, &s.kb, cfg.clone());
    let plan = &s.plans[0];
    let _ = tier.serve(plan); // warm the cache

    let mut group = c.benchmark_group("serve");
    group.sample_size(500);
    group.bench_function("hit/1000tpl", |b| {
        b.iter(|| black_box(tier.serve(plan)).report.rewrites.len())
    });
    group.bench_function("uncached/1000tpl", |b| {
        b.iter(|| {
            black_box(match_plan(&s.w.db, &s.kb, plan, &cfg))
                .rewrites
                .len()
        })
    });
    group.finish();
}

/// Whole-stream replay through `serve` (per-plan) and through the
/// admission path `serve_batch` (coalesced misses, batch size 8). The
/// stream length is in the bench name, so ns/sample ÷ arrivals gives
/// per-arrival latency and its inverse gives throughput.
fn bench_streams(c: &mut Criterion) {
    let s = setup();
    let cfg = MatchConfig::default();
    let stream = arrival_stream(256, s.plans.len());

    let mut group = c.benchmark_group("serve_stream");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("serial", "256arrivals"),
        &stream,
        |b, stream| {
            let tier = ServingTier::new(&s.w.db, &s.kb, cfg.clone());
            b.iter(|| {
                stream
                    .iter()
                    .map(|&i| tier.serve(&s.plans[i]).report.rewrites.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched", "256arrivals"),
        &stream,
        |b, stream| {
            let tier = ServingTier::new(&s.w.db, &s.kb, cfg.clone());
            b.iter(|| {
                stream
                    .chunks(8)
                    .map(|chunk| {
                        let refs: Vec<&Qgm> = chunk.iter().map(|&i| &s.plans[i]).collect();
                        tier.serve_batch(&refs).len()
                    })
                    .sum::<usize>()
            })
        },
    );
    // The uncached floor for the same stream: what serving would cost
    // with no cache at all.
    group.bench_with_input(
        BenchmarkId::new("uncached", "256arrivals"),
        &stream,
        |b, stream| {
            b.iter(|| {
                stream
                    .iter()
                    .map(|&i| match_plan(&s.w.db, &s.kb, &s.plans[i], &cfg).rewrites.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

/// Serving under churn: every sample interleaves a template publish and
/// retraction with a short stream, so each round pays one epoch
/// invalidation (stale drop + re-match) before hits resume.
fn bench_churn(c: &mut Criterion) {
    let s = setup();
    let cfg = MatchConfig::default();
    let stream = arrival_stream(32, s.plans.len());
    // A template whose publish/retract drives the epoch; shaped like the
    // learned ones so insertion touches the same index paths.
    let plan = &s.plans[0];
    let g = galo_qgm::GuidelineDoc::new(vec![
        galo_qgm::guideline_from_plan(plan, plan.root()).expect("plan has a guideline shape")
    ]);
    let churn_tpl = galo_core::abstract_plan(&s.w.db, plan, plan.root(), &g, "zz_churn".into());
    let churn_iri = galo_core::vocab::template_iri("zz_churn")
        .str_value()
        .to_string();

    let mut group = c.benchmark_group("serve_churn");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("publish_per_round", "32arrivals"),
        &stream,
        |b, stream| {
            let tier = ServingTier::new(&s.w.db, &s.kb, cfg.clone());
            b.iter(|| {
                s.kb.insert(&churn_tpl);
                let a: usize = stream
                    .iter()
                    .map(|&i| tier.serve(&s.plans[i]).report.rewrites.len())
                    .sum();
                s.kb.remove_template(&churn_iri);
                let b_: usize = stream
                    .iter()
                    .map(|&i| tier.serve(&s.plans[i]).report.rewrites.len())
                    .sum();
                a + b_
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hit_vs_uncached, bench_streams, bench_churn
}
criterion_main!(benches);
