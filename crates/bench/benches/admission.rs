//! Criterion bench for the quantile-sketch admission pre-check: the
//! 10,000-template scaling push.
//!
//! Setup: learn real templates from TPC-DS, then inflate the knowledge
//! base to 10,000 templates with *polluted* patterns
//! ([`galo_bench::inflate_kb_polluted`]) — structurally live templates
//! whose exact min/max envelopes admit the live plans but whose probes
//! provably fail, i.e. exactly the false admissions the trimmed sketch
//! envelopes exist to kill. The bench then matches the live plan mix at
//! `sketch_trim = 0` (the exact min/max baseline — bit-identical to the
//! pre-sketch index) and `sketch_trim = 0.05`, and reports:
//!
//! * `admission/match/...` — match latency per plan mix pass (the JSON
//!   p50/p99 are true per-pass percentiles);
//! * `admission/probes_executed@...` and `false_admissions@...` — wasted
//!   probe evaluations at each trim;
//! * `admission/rejects_card@...` / `rejects_scan@...` /
//!   `considered@...` — the new `MatchReport` admission counters;
//! * `admission/lost_matches` — rewrites found at trim 0 but missed at
//!   trim 0.05; asserted **zero** (trimming must never lose a match);
//! * `admission/catalog_*` — stored sketch count, bytes per template
//!   and the max centroid count (the fixed budget the catalog-overhead
//!   acceptance bound is written against).
//!
//! Run with `GALO_BENCH_JSON=BENCH_admission.json` to export, and
//! `GALO_BENCH_QUICK=1` for CI's fast lane.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galo_bench::{catalog_sketch_stats, inflate_kb_polluted, learning_config};
use galo_core::{match_plan, KnowledgeBase, MatchConfig, MatchReport};
use galo_optimizer::Optimizer;
use galo_qgm::Qgm;
use galo_workloads::tpcds;

const TARGET_TEMPLATES: usize = 10_000;
const TRIM: f64 = 0.05;

struct Setup {
    w: galo_workloads::Workload,
    kb: KnowledgeBase,
    plans: Vec<Qgm>,
}

fn setup() -> Setup {
    let w = tpcds::workload();
    let kb = KnowledgeBase::new();
    let small = galo_workloads::Workload {
        name: w.name.clone(),
        db: w.db.clone(),
        queries: w.queries[..10].to_vec(),
    };
    galo_core::learn_workload(&small, &kb, &learning_config(true));
    let pollution = inflate_kb_polluted(&kb, &w.db, &w.queries[..6], TARGET_TEMPLATES);
    println!(
        "admission setup: {} templates ({} card-polluted, {} scan-polluted, {} displaced)",
        kb.template_count(),
        pollution.card_polluted,
        pollution.scan_polluted,
        pollution.displaced
    );

    let optimizer = Optimizer::new(&w.db);
    let plans: Vec<Qgm> = w
        .queries
        .iter()
        .take(12)
        .filter_map(|q| optimizer.optimize(q).ok())
        .collect();
    Setup { w, kb, plans }
}

fn config(trim: f64) -> MatchConfig {
    MatchConfig {
        sketch_trim: trim,
        ..MatchConfig::default()
    }
}

/// Match every plan of the mix once; fold the reports.
fn match_mix(s: &Setup, cfg: &MatchConfig) -> Vec<MatchReport> {
    s.plans
        .iter()
        .map(|p| match_plan(&s.w.db, &s.kb, p, cfg))
        .collect()
}

/// The `(template IRI, segment op id)` set of every rewrite — the
/// match-outcome identity the zero-lost-matches differential compares.
fn rewrite_keys(reports: &[MatchReport]) -> Vec<(String, u32)> {
    let mut keys: Vec<(String, u32)> = reports
        .iter()
        .flat_map(|r| r.rewrites.iter())
        .map(|rw| (rw.template_iri.clone(), rw.segment_op_id))
        .collect();
    keys.sort();
    keys
}

fn fold(reports: &[MatchReport]) -> (usize, usize, usize, usize, usize) {
    let probes = reports.iter().map(|r| r.probes_executed).sum();
    let considered = reports.iter().map(|r| r.candidates_considered).sum();
    let rej_card = reports.iter().map(|r| r.admission_rejects_card).sum();
    let rej_scan = reports.iter().map(|r| r.admission_rejects_scan).sum();
    // A matched segment's final probe is the one true admission; every
    // other executed probe was admitted by the pre-check yet failed.
    let matched: usize = reports
        .iter()
        .map(|r| {
            let mut segs: Vec<u32> = r.rewrites.iter().map(|rw| rw.segment_op_id).collect();
            segs.dedup();
            segs.len()
        })
        .sum();
    (probes, probes - matched, considered, rej_card, rej_scan)
}

fn bench_admission(c: &mut Criterion) {
    let s = setup();
    let exact = config(0.0);
    let trimmed = config(TRIM);

    // -------------------------------------------------- correctness --
    let exact_reports = match_mix(&s, &exact);
    let trimmed_reports = match_mix(&s, &trimmed);
    let lost = rewrite_keys(&exact_reports)
        .iter()
        .filter(|k| !rewrite_keys(&trimmed_reports).contains(k))
        .count();
    assert_eq!(
        lost, 0,
        "trimmed admission must not lose a true match (trim {TRIM})"
    );
    assert!(
        !rewrite_keys(&exact_reports).is_empty(),
        "the plan mix must produce real matches for the differential to mean anything"
    );

    // ----------------------------------------------------- counters --
    let (probes0, false0, considered0, rc0, rs0) = fold(&exact_reports);
    let (probes1, false1, considered1, rc1, rs1) = fold(&trimmed_reports);
    assert!(
        false1 < false0,
        "trimming must reduce false admissions: {false0} -> {false1}"
    );
    c.metric("admission/templates", s.kb.template_count() as u128);
    c.metric("admission/probes_executed@trim0", probes0 as u128);
    c.metric("admission/probes_executed@trim5pct", probes1 as u128);
    c.metric("admission/false_admissions@trim0", false0 as u128);
    c.metric("admission/false_admissions@trim5pct", false1 as u128);
    c.metric("admission/considered@trim0", considered0 as u128);
    c.metric("admission/considered@trim5pct", considered1 as u128);
    c.metric("admission/rejects_card@trim0", rc0 as u128);
    c.metric("admission/rejects_card@trim5pct", rc1 as u128);
    c.metric("admission/rejects_scan@trim0", rs0 as u128);
    c.metric("admission/rejects_scan@trim5pct", rs1 as u128);
    c.metric("admission/lost_matches", lost as u128);

    // ------------------------------------------------ catalog bytes --
    let (sketches, bytes, max_centroids) = catalog_sketch_stats(&s.kb);
    c.metric("admission/catalog_sketches", sketches as u128);
    c.metric(
        "admission/catalog_sketch_bytes_per_template",
        (bytes / s.kb.template_count().max(1)) as u128,
    );
    c.metric("admission/catalog_max_centroids", max_centroids as u128);

    // ------------------------------------------------------ latency --
    let mut group = c.benchmark_group("admission/match");
    group.sample_size(30);
    group.bench_function("mix@trim0/10ktpl", |b| {
        b.iter(|| black_box(match_mix(&s, &exact)).len())
    });
    group.bench_function("mix@trim5pct/10ktpl", |b| {
        b.iter(|| black_box(match_mix(&s, &trimmed)).len())
    });
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
