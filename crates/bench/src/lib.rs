//! # galo-bench
//!
//! The experiment harness regenerating every table and figure of the GALO
//! paper's evaluation (§4). Each `expN_*` function reproduces one
//! experiment and returns structured rows; the `experiments` binary prints
//! them in the paper's format. Criterion benches under `benches/` measure
//! the same code paths with statistical rigor.

use std::time::Instant;

use galo_catalog::Database;
use galo_core::{
    expert_diagnose, match_plan, ExpertConfig, Galo, KnowledgeBase, LearningConfig, LearningReport,
    MatchConfig,
};
use galo_optimizer::Optimizer;
use galo_qgm::guideline_from_plan;
use galo_sql::{CmpOp, Query};
use galo_workloads::{client, tpcds, QueryBuilder, Workload};

/// Learning configuration used by the experiments. `fast` trades sampling
/// breadth for wall time (shape-preserving).
pub fn learning_config(fast: bool) -> LearningConfig {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    if fast {
        LearningConfig {
            probes_per_pred: 2,
            random_plans: 6,
            runs_per_plan: 3,
            max_subqueries_per_query: 60,
            threads,
            ..LearningConfig::default()
        }
    } else {
        LearningConfig {
            threads,
            ..LearningConfig::default()
        }
    }
}

// ---------------------------------------------------------------- Exp-1 --

/// One row of the Figure 9 sweep.
#[derive(Debug, Clone)]
pub struct Exp1Row {
    pub threshold: usize,
    pub avg_query_ms: f64,
    pub avg_subquery_ms: f64,
    pub unique_subqueries: usize,
    pub templates: usize,
    pub avg_improvement: f64,
    /// Simulated machine time spent executing benchmark plans, minutes.
    pub sim_machine_min: f64,
}

/// Exp-1 / Figure 9: learning scalability versus the join-number
/// threshold, over TPC-DS.
pub fn exp1_learning_scalability(thresholds: &[usize], fast: bool) -> Vec<Exp1Row> {
    let w = tpcds::workload();
    thresholds
        .iter()
        .map(|&t| {
            let kb = KnowledgeBase::new();
            let cfg = LearningConfig {
                join_threshold: t,
                ..learning_config(fast)
            };
            let report = galo_core::learn_workload(&w, &kb, &cfg);
            Exp1Row {
                threshold: t,
                avg_query_ms: report.avg_query_ms(),
                avg_subquery_ms: report.avg_subquery_ms(),
                unique_subqueries: report.subqueries_unique,
                templates: report.templates_learned,
                avg_improvement: report.avg_improvement,
                sim_machine_min: report.simulated_machine_ms / 60_000.0,
            }
        })
        .collect()
}

/// Exp-1 headline numbers: templates learned and average rewrite
/// improvement for both workloads at threshold 4 (paper: 98 templates /
/// 37% on TPC-DS; 178 / 35% on the client workload).
pub fn exp1_headline(fast: bool) -> (LearningReport, LearningReport) {
    let cfg = learning_config(fast);
    let tp = tpcds::workload();
    let kb1 = KnowledgeBase::new();
    let r1 = galo_core::learn_workload(&tp, &kb1, &cfg);
    let cl = client::workload();
    let kb2 = KnowledgeBase::new();
    let r2 = galo_core::learn_workload(&cl, &kb2, &cfg);
    (r1, r2)
}

// ---------------------------------------------------------------- Exp-2 --

/// Exp-2 per-workload result (Figure 10).
#[derive(Debug)]
pub struct Exp2Result {
    pub workload: String,
    pub total_queries: usize,
    pub matched_queries: usize,
    pub improved_queries: usize,
    pub avg_gain_improved: f64,
    /// Improved queries that reused a template learned on another workload.
    pub cross_workload_reuses: usize,
    /// (query name, re-optimized runtime as % of original) for improved
    /// queries — the paper's blue bars.
    pub bars: Vec<(String, f64)>,
}

/// Build a GALO instance whose KB contains patterns from both workloads
/// (the paper's unified, collaborative knowledge base).
pub fn learn_both(fast: bool) -> (Galo, LearningReport, LearningReport, Workload, Workload) {
    let cfg = learning_config(fast);
    let galo = Galo::new();
    let tp = tpcds::workload();
    let r1 = galo.learn(&tp, &cfg);
    let cl = client::workload();
    let r2 = galo.learn(&cl, &cfg);
    (galo, r1, r2, tp, cl)
}

/// Exp-2 / Figure 10: re-optimization improvement over both workloads.
/// TPC-DS is matched against its own learned patterns; the client workload
/// against the unified KB (which is what surfaces cross-workload reuse).
pub fn exp2_matching_improvement(fast: bool) -> (Exp2Result, Exp2Result) {
    let cfg = learning_config(fast);

    // TPC-DS against its own KB.
    let tp = tpcds::workload();
    let galo_tp = Galo::new();
    galo_tp.learn(&tp, &cfg);
    let rep_tp = galo_tp.reoptimize_workload(&tp);

    // Client against the unified KB (TPC-DS templates + client templates).
    let (galo_union, _, _, _, cl) = learn_both(fast);
    let rep_cl = galo_union.reoptimize_workload(&cl);

    // Cross-workload reuse (the paper's §4.2 re-usability claim): client
    // queries that the TPC-DS-learned patterns *alone* improve.
    let reuse = galo_tp
        .reoptimize_workload(&cl)
        .improved()
        .iter()
        .map(|q| q.query_name.clone())
        .collect::<Vec<_>>();

    let to_result =
        |name: &str, own: &str, rep: &galo_core::WorkloadReoptReport| {
            let improved = rep.improved();
            Exp2Result {
                workload: name.to_string(),
                total_queries: rep.per_query.len(),
                matched_queries: rep
                    .per_query
                    .iter()
                    .filter(|q| q.rewrites_matched > 0)
                    .count(),
                improved_queries: improved.len(),
                avg_gain_improved: rep.avg_gain_improved(),
                cross_workload_reuses: rep
                    .cross_workload_reuses(own)
                    .max(if name == "IBM client" { reuse.len() } else { 0 }),
                bars: improved
                    .iter()
                    .map(|q| (q.query_name.clone(), 100.0 * q.final_ms / q.original_ms))
                    .collect(),
            }
        };
    (
        to_result("TPC-DS", "tpcds_1gb", &rep_tp),
        to_result("IBM client", "client_insurance", &rep_cl),
    )
}

// ---------------------------------------------------------------- Exp-3 --

/// Exp-3 / Figure 11: matching time bucketed by the query's table count.
/// Returns `(bucket upper bound, avg ms per query, queries)`.
pub fn exp3_matching_scalability(galo: &Galo, workloads: &[&Workload]) -> Vec<(usize, f64, usize)> {
    let mut buckets: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
    for w in workloads {
        let optimizer = Optimizer::new(&w.db);
        for q in &w.queries {
            let Ok(plan) = optimizer.optimize(q) else {
                continue;
            };
            let report = match_plan(&w.db, &galo.kb, &plan, &galo.match_cfg);
            // Buckets of 4 tables (the paper spans 1..32).
            let bucket = q.tables.len().div_ceil(4) * 4;
            let e = buckets.entry(bucket).or_insert((0.0, 0));
            e.0 += report.match_ms;
            e.1 += 1;
        }
    }
    buckets
        .into_iter()
        .map(|(b, (total, n))| (b, total / n.max(1) as f64, n))
        .collect()
}

// ---------------------------------------------------------------- Exp-4 --

/// Inflate a knowledge base with synthetic non-matching templates so the
/// matcher searches a larger library (the paper's 1,000-pattern stress).
/// Templates are structurally real (abstracted from actual plans) but
/// their validity ranges sit far outside any live cardinality.
pub fn inflate_kb(kb: &KnowledgeBase, db: &Database, queries: &[Query], target: usize) {
    let optimizer = Optimizer::new(db);
    let mut made = kb.template_count();
    let mut shift = 1.0e9;
    'outer: loop {
        for q in queries {
            if made >= target {
                break 'outer;
            }
            let Ok(plan) = optimizer.optimize(q) else {
                continue;
            };
            let Some(g) = guideline_from_plan(&plan, plan.root()) else {
                continue;
            };
            let doc = galo_qgm::GuidelineDoc::new(vec![g]);
            let mut tpl =
                galo_core::abstract_plan(db, &plan, plan.root(), &doc, kb.fresh_id(made as u64));
            for p in &mut tpl.pops {
                p.cardinality = galo_core::StatSketch::from_range(shift, shift + 1.0);
            }
            tpl.source_workload = "synthetic".into();
            kb.insert(&tpl);
            made += 1;
            shift += 10.0;
        }
    }
}

/// Tally of an [`inflate_kb_polluted`] run, by pollution flavor.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollutionReport {
    /// Templates whose cardinality group was polluted (admission
    /// pre-check passes at trim 0, probe fails, trimmed pre-check
    /// classifies them as cardinality rejects).
    pub card_polluted: usize,
    /// Templates whose scan base-cardinality group was polluted
    /// (cardinalities admit; the trimmed pre-check rejects on scan
    /// statistics).
    pub scan_polluted: usize,
    /// Segments with no same-typed operator group of two distinct
    /// values — inflated with plain far-displaced ranges instead, as
    /// [`inflate_kb`] does.
    pub displaced: usize,
}

/// The covering sketch of the covering/crippled pollution scheme: 50
/// observations of mass at `lo` plus one outlier at `hi`, so its exact
/// envelope spans `[lo, hi]` but any trim ≥ 2% drops the outlier
/// centroid and collapses the envelope back onto `lo`.
fn covering_sketch(lo: f64, hi: f64) -> galo_core::StatSketch {
    let mut s = galo_core::StatSketch::new();
    for _ in 0..50 {
        s.observe(lo);
    }
    s.observe(hi);
    s
}

/// A range strictly below `v`: admits nothing the group's checks carry.
fn crippled_sketch(v: f64) -> galo_core::StatSketch {
    galo_core::StatSketch::from_range(v * 0.25, v * 0.5)
}

/// Pollute one same-typed **non-scan** operator group of `tpl`:
/// `n - 1` covering pops span every group value exactly but collapse
/// under trimming; one crippled pop admits nothing. The exact pre-check
/// admits the template (each check finds a covering pop) yet the probe
/// cannot match it — its pairwise-distinctness filters need `n`
/// admitting pops and only `n - 1` exist — so every admission is a
/// wasted probe. A trimmed pre-check rejects it on cardinality.
fn pollute_cardinality_group(tpl: &mut galo_core::Template) -> bool {
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for (i, p) in tpl.pops.iter().enumerate() {
        if p.scan.is_none() {
            groups.entry(p.pop_type.clone()).or_default().push(i);
        }
    }
    for idxs in groups.values() {
        if idxs.len() < 2 {
            continue;
        }
        let vals: Vec<f64> = idxs
            .iter()
            .map(|&i| tpl.pops[i].cardinality.envelope(0.0).lo)
            .collect();
        let vmin = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let vmax = vals.iter().copied().fold(0.0, f64::max);
        if !(vmin > 0.0 && vmax > vmin * 1.001) {
            continue;
        }
        let covering = covering_sketch(vmin, vmax);
        for (k, &i) in idxs.iter().enumerate() {
            tpl.pops[i].cardinality = if k == 0 {
                crippled_sketch(vmin)
            } else {
                covering.clone()
            };
        }
        return true;
    }
    false
}

/// Pollute one same-typed **scan** group of `tpl` through its scan
/// statistics instead: group cardinalities and row-size/FPAGES ranges
/// are widened to cover every member (so the cardinality half of the
/// pre-check passes), while base cardinality gets the covering/crippled
/// treatment — the trimmed pre-check rejects on scan statistics.
fn pollute_scan_group(tpl: &mut galo_core::Template) -> bool {
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for (i, p) in tpl.pops.iter().enumerate() {
        if p.scan.is_some() {
            groups.entry(p.pop_type.clone()).or_default().push(i);
        }
    }
    for idxs in groups.values() {
        if idxs.len() < 2 {
            continue;
        }
        let stat = |i: usize, f: fn(&galo_core::TemplateScan) -> &galo_core::StatSketch| {
            f(tpl.pops[i].scan.as_ref().expect("scan group")).envelope(0.0)
        };
        let span = |f: fn(&galo_core::TemplateScan) -> &galo_core::StatSketch| {
            let lo = idxs
                .iter()
                .map(|&i| stat(i, f).lo)
                .fold(f64::INFINITY, f64::min);
            let hi = idxs.iter().map(|&i| stat(i, f).hi).fold(0.0, f64::max);
            (lo, hi)
        };
        let (bmin, bmax) = span(|s| &s.base_cardinality);
        if !(bmin > 0.0 && bmax > bmin * 1.001) {
            continue;
        }
        let cards: Vec<f64> = idxs
            .iter()
            .map(|&i| tpl.pops[i].cardinality.envelope(0.0).lo)
            .collect();
        let cmin = cards.iter().copied().fold(f64::INFINITY, f64::min);
        let cmax = cards.iter().copied().fold(0.0, f64::max);
        let (rmin, rmax) = span(|s| &s.row_size);
        let (fmin, fmax) = span(|s| &s.fpages);
        let covering = covering_sketch(bmin, bmax);
        for (k, &i) in idxs.iter().enumerate() {
            let p = &mut tpl.pops[i];
            p.cardinality = galo_core::StatSketch::from_range(cmin, cmax);
            let scan = p.scan.as_mut().expect("scan group");
            scan.row_size = galo_core::StatSketch::from_range(rmin, rmax);
            scan.fpages = galo_core::StatSketch::from_range(fmin, fmax);
            scan.base_cardinality = if k == 0 {
                crippled_sketch(bmin)
            } else {
                covering.clone()
            };
        }
        return true;
    }
    false
}

/// Inflate a knowledge base to `target` templates with **polluted**
/// synthetic patterns for the admission bench: structurally real
/// templates (abstracted from live plan segments, so they share the
/// live signatures) whose statistics are arranged so the exact min/max
/// pre-check admits them, the Figure-6 probe provably rejects them
/// (a pigeonhole over the pairwise-distinctness filters), and a
/// trimmed-envelope pre-check rejects them without probing. Segments
/// with no pollutable operator group fall back to [`inflate_kb`]-style
/// far-displaced ranges. No polluted or displaced template can ever
/// match, so trimming loses no true match by construction.
pub fn inflate_kb_polluted(
    kb: &KnowledgeBase,
    db: &Database,
    queries: &[Query],
    target: usize,
) -> PollutionReport {
    let optimizer = Optimizer::new(db);
    let mut report = PollutionReport::default();
    let mut made = kb.template_count();
    let mut shift = 1.0e9;
    let mut flavor = 0usize;
    'outer: while made < target {
        let before = made;
        for q in queries {
            let Ok(plan) = optimizer.optimize(q) else {
                continue;
            };
            for seg in galo_qgm::segments(&plan, 4) {
                if made >= target {
                    break 'outer;
                }
                let Some(g) = guideline_from_plan(&plan, seg.root) else {
                    continue;
                };
                let doc = galo_qgm::GuidelineDoc::new(vec![g]);
                let mut tpl = galo_core::abstract_plan(
                    db,
                    &plan,
                    seg.root,
                    &doc,
                    kb.fresh_id(0xADC0_0000 + made as u64),
                );
                // Alternate pollution flavors so both admission reject
                // counters see pressure; fall back across flavors, then
                // to displacement.
                let prefer_card = flavor.is_multiple_of(2);
                let polluted = if prefer_card && pollute_cardinality_group(&mut tpl) {
                    report.card_polluted += 1;
                    true
                } else if pollute_scan_group(&mut tpl) {
                    report.scan_polluted += 1;
                    true
                } else if !prefer_card && pollute_cardinality_group(&mut tpl) {
                    report.card_polluted += 1;
                    true
                } else {
                    false
                };
                if polluted {
                    flavor += 1;
                } else {
                    for p in &mut tpl.pops {
                        p.cardinality = galo_core::StatSketch::from_range(shift, shift + 1.0);
                    }
                    shift += 10.0;
                    report.displaced += 1;
                }
                tpl.source_workload = "synthetic".into();
                kb.insert(&tpl);
                made += 1;
            }
        }
        if made == before {
            break; // no plan yields a template; avoid spinning forever
        }
    }
    report
}

/// Scan a knowledge base's export for stored sketch literals: returns
/// `(sketch count, total sketch bytes, max centroid count)` — the
/// catalog-overhead numbers the admission bench reports.
pub fn catalog_sketch_stats(kb: &KnowledgeBase) -> (usize, usize, usize) {
    let export = kb.export();
    let mut count = 0usize;
    let mut bytes = 0usize;
    let mut max_centroids = 0usize;
    for line in export.lines() {
        let Some(prop_end) = line.find("Sketch> \"") else {
            continue;
        };
        let hex = &line[prop_end + "Sketch> \"".len()..];
        let Some(end) = hex.find('"') else { continue };
        let Some(sketch) = galo_core::StatSketch::from_hex(&hex[..end]) else {
            continue;
        };
        count += 1;
        bytes += hex[..end].len() / 2;
        max_centroids = max_centroids.max(sketch.centroid_count());
    }
    (count, bytes, max_centroids)
}

/// Exp-4 / Figure 12: routinization — total matching time for workload
/// buckets of increasing size against KBs of increasing template count.
/// Returns `(n_queries, n_templates, total seconds)`.
pub fn exp4_routinization(
    workload: &Workload,
    query_buckets: &[usize],
    template_counts: &[usize],
    base_galo: &Galo,
) -> Vec<(usize, usize, f64)> {
    let optimizer = Optimizer::new(&workload.db);
    let plans: Vec<_> = workload
        .queries
        .iter()
        .filter_map(|q| optimizer.optimize(q).ok())
        .collect();
    let mut out = Vec::new();
    for &tcount in template_counts {
        // Fresh KB per template count: real templates + synthetic filler.
        let kb = KnowledgeBase::new();
        kb.import(&base_galo.kb.export()).expect("kb reimport");
        inflate_kb(
            &kb,
            &workload.db,
            &workload.queries[..8.min(workload.queries.len())],
            tcount,
        );
        for &qcount in query_buckets {
            let t0 = Instant::now();
            for plan in plans.iter().cycle().take(qcount) {
                let _ = match_plan(&workload.db, &kb, plan, &MatchConfig::default());
            }
            out.push((qcount, tcount, t0.elapsed().as_secs_f64()));
        }
    }
    out
}

// ------------------------------------------------------------- Exp-5/6 --

/// The four problem queries of the comparative study (§4.3), one per
/// problem-pattern family.
pub fn problem_queries() -> Vec<(String, Workload)> {
    let tp_db = tpcds::database();
    let cl_db = client::database();

    // P1 — the Figure 1 family: hero-table join with stale distribution
    // statistics on ENTRY_IDX.E_STATUS.
    let p1 = {
        let mut qb = QueryBuilder::new(&cl_db, "p1_hero_join");
        let o = qb.table("OPEN_IN");
        let e = qb.table("ENTRY_IDX");
        qb.join((o, "O_OPEN_SK"), (e, "E_OPEN_SK"))
            .cmp(e, "E_STATUS", CmpOp::Eq, "OPEN")
            .between(o, "O_CREATED", 10_000i64, 30_000i64)
            .select(o, "O_PAYLOAD");
        qb.build()
    };

    // P2 — the Figure 4 family: flooding through catalog_sales' stale
    // address index; the fix restructures the join order, which is outside
    // the expert's single-join repertoire.
    let p2 = {
        let mut qb = QueryBuilder::new(&tp_db, "p2_flooding");
        let ca = qb.table("CUSTOMER_ADDRESS");
        let cs = qb.table("CATALOG_SALES");
        let dd = qb.table("DATE_DIM");
        qb.join((ca, "CA_ADDRESS_SK"), (cs, "CS_ADDR_SK"))
            .join((cs, "CS_SOLD_DATE_SK"), (dd, "D_DATE_SK"))
            .cmp(ca, "CA_STATE", CmpOp::Eq, "TX")
            .cmp(dd, "D_YEAR", CmpOp::Eq, 2000i64)
            .select(cs, "CS_LIST_PRICE");
        qb.build()
    };

    // P3 — the Figure 7 family: the stored transfer rate makes the
    // optimizer over-cost sequential scans of web_sales and fall back to a
    // bulk index fetch.
    let p3 = {
        let mut qb = QueryBuilder::new(&tp_db, "p3_transfer_rate");
        let ws = qb.table("WEB_SALES");
        let dd = qb.table("DATE_DIM");
        qb.join((ws, "WS_SOLD_DATE_SK"), (dd, "D_DATE_SK"))
            .select(ws, "WS_LIST_PRICE");
        qb.build()
    };

    // P4 — the Figure 8 family: date correlation and merge-join early
    // termination. The fix (merge join over *both* index-ordered inputs)
    // needs three simultaneous plan changes, which is what makes it
    // unreachable for the experts' single-mutation repertoire — the
    // analogue of the paper's unresolved pattern #2.
    let p4 = {
        let mut qb = QueryBuilder::new(&tp_db, "p4_sorting");
        let ss = qb.table("STORE_SALES");
        let dd = qb.table("DATE_DIM");
        qb.join((ss, "SS_SOLD_DATE_SK"), (dd, "D_DATE_SK"))
            .between(dd, "D_DATE", 0i64, 36_524i64)
            .select(ss, "SS_LIST_PRICE");
        qb.build()
    };

    vec![
        (
            "P1 (join order/method, Fig 1)".to_string(),
            Workload {
                name: "client".into(),
                db: cl_db,
                queries: vec![p1],
            },
        ),
        (
            "P2 (flooding, Fig 4)".to_string(),
            Workload {
                name: "tpcds".into(),
                db: tp_db.clone(),
                queries: vec![p2],
            },
        ),
        (
            "P3 (transfer rate, Fig 7)".to_string(),
            Workload {
                name: "tpcds".into(),
                db: tp_db.clone(),
                queries: vec![p3],
            },
        ),
        (
            "P4 (sorting, Fig 8)".to_string(),
            Workload {
                name: "tpcds".into(),
                db: tp_db,
                queries: vec![p4],
            },
        ),
    ]
}

/// The TPC-DS problem queries of [`problem_queries`] combined into one
/// multi-query workload — the learner-cluster scenarios' input: several
/// independent problem patterns over one database, whose mining space a
/// cluster of learner machines splits.
pub fn problem_workload() -> Workload {
    let mut db = None;
    let mut queries = Vec::new();
    for (_, w) in problem_queries() {
        if w.name != "tpcds" {
            continue;
        }
        db.get_or_insert(w.db);
        queries.extend(w.queries);
    }
    Workload {
        name: "tpcds".into(),
        db: db.expect("problem_queries always includes tpcds scenarios"),
        queries,
    }
}

/// Comparative study row: one problem pattern, expert vs GALO.
#[derive(Debug)]
pub struct StudyRow {
    pub pattern: String,
    /// Average simulated expert minutes (four experts).
    pub expert_minutes: f64,
    /// GALO learning cost in simulated machine minutes.
    pub galo_minutes: f64,
    /// Expert's best improvement over the optimizer plan, percent.
    pub expert_improvement_pct: f64,
    /// GALO's improvement, percent.
    pub galo_improvement_pct: f64,
    /// Whether the experts found any fix at all.
    pub expert_found: bool,
}

/// Exp-5 + Exp-6 (Figures 13 & 14): manual vs automatic problem
/// determination on the four problem queries.
pub fn exp56_comparative_study(fast: bool) -> Vec<StudyRow> {
    let mut rows = Vec::new();
    for (pattern, w) in problem_queries() {
        let query = &w.queries[0];

        // GALO: learn on this single-query workload.
        let kb = KnowledgeBase::new();
        let cfg = LearningConfig {
            random_plans: if fast { 8 } else { 16 },
            ..learning_config(fast)
        };
        let report = galo_core::learn_workload(&w, &kb, &cfg);
        let galo_minutes = report.simulated_machine_ms / 60_000.0;
        let galo_gain =
            match galo_core::reoptimize_query(&w.db, &kb, query, &MatchConfig::default()) {
                Ok(outcome) => outcome.gain() * 100.0,
                Err(_) => 0.0,
            };

        // Four simulated experts with different seeds.
        let mut minutes = 0.0;
        let mut best_improvement: f64 = 0.0;
        let mut any_found = false;
        for seed in [11u64, 23, 37, 41] {
            let out = expert_diagnose(
                &w.db,
                query,
                &ExpertConfig {
                    seed,
                    ..ExpertConfig::default()
                },
            );
            minutes += out.minutes_spent;
            best_improvement = best_improvement.max(out.improvement * 100.0);
            any_found |= out.found_fix && out.improvement > 0.0;
        }
        rows.push(StudyRow {
            pattern,
            expert_minutes: minutes / 4.0,
            galo_minutes,
            expert_improvement_pct: best_improvement,
            galo_improvement_pct: galo_gain,
            expert_found: any_found,
        });
    }
    rows
}

// ----------------------------------------------------------- case study --

/// A rendered before/after case study (the paper's Figures 1, 4, 7, 8).
#[derive(Debug)]
pub struct CaseStudy {
    pub name: String,
    pub before_plan: String,
    pub after_plan: String,
    pub before_ms: f64,
    pub after_ms: f64,
    pub matched_rewrites: usize,
}

/// Learn on each problem query and show GALO's before/after plans.
pub fn case_studies(fast: bool) -> Vec<CaseStudy> {
    let mut out = Vec::new();
    for (name, w) in problem_queries() {
        let kb = KnowledgeBase::new();
        let cfg = LearningConfig {
            random_plans: if fast { 8 } else { 16 },
            ..learning_config(fast)
        };
        galo_core::learn_workload(&w, &kb, &cfg);
        let Ok(outcome) =
            galo_core::reoptimize_query(&w.db, &kb, &w.queries[0], &MatchConfig::default())
        else {
            continue;
        };
        let after_plan = outcome
            .reoptimized
            .as_ref()
            .map(|r| r.qgm.render(&w.db))
            .unwrap_or_else(|| "(no rewrite matched)".to_string());
        out.push(CaseStudy {
            name,
            before_plan: outcome.original.render(&w.db),
            after_plan,
            before_ms: outcome.original_ms,
            after_ms: outcome.final_ms,
            matched_rewrites: outcome.matched.rewrites.len(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_queries_are_connected_and_plan() {
        for (name, w) in problem_queries() {
            assert!(w.queries[0].is_connected(), "{name}");
            Optimizer::new(&w.db)
                .optimize(&w.queries[0])
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn kb_inflation_reaches_target() {
        let w = tpcds::workload();
        let kb = KnowledgeBase::new();
        inflate_kb(&kb, &w.db, &w.queries[..4], 25);
        assert_eq!(kb.template_count(), 25);
    }
}
