//! Regenerates every table and figure of the GALO paper's evaluation.
//!
//! ```text
//! experiments [exp1|exp2|exp3|exp4|exp5|exp6|figs|all] [--fast]
//! ```
//!
//! `--fast` shrinks sampling breadth (fewer probes/random plans/runs) while
//! preserving every qualitative shape; the recorded EXPERIMENTS.md numbers
//! come from the full mode.

use galo_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match which {
        "exp1" => exp1(fast),
        "exp2" => exp2(fast),
        "exp3" => exp3(fast),
        "exp4" => exp4(fast),
        "exp5" | "exp6" => exp56(fast),
        "figs" => figs(fast),
        "evolution" => evolution(fast),
        "all" => {
            exp1(fast);
            exp2(fast);
            exp3(fast);
            exp4(fast);
            exp56(fast);
            figs(fast);
            evolution(fast);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments [exp1|exp2|exp3|exp4|exp5|exp6|figs|evolution|all] [--fast]"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

fn exp1(fast: bool) {
    header("Exp-1 / Figure 9 — Learning scalability & effectiveness (TPC-DS)");
    let thresholds = [1usize, 2, 3, 4, 5];
    let rows = exp1_learning_scalability(&thresholds, fast);
    println!(
        "{:>9} | {:>12} | {:>15} | {:>8} | {:>9} | {:>11}",
        "joins<=", "avg ms/query", "avg ms/subquery", "subq", "templates", "avg improv"
    );
    println!("{}", "-".repeat(74));
    for r in &rows {
        println!(
            "{:>9} | {:>12.2} | {:>15.3} | {:>8} | {:>9} | {:>10.1}%",
            r.threshold,
            r.avg_query_ms,
            r.avg_subquery_ms,
            r.unique_subqueries,
            r.templates,
            r.avg_improvement * 100.0
        );
    }
    println!("\nPaper shape: per-query time grows super-linearly with the threshold,");
    println!("per-sub-query time roughly linearly; threshold 4 is the sweet spot.");

    header("Exp-1 headline — templates learned per workload (threshold 4)");
    let (tp, cl) = exp1_headline(fast);
    println!(
        "TPC-DS      : {:>4} templates, avg improvement {:>5.1}%   (paper:  98, 37%)",
        tp.templates_learned,
        tp.avg_improvement * 100.0
    );
    println!(
        "IBM client  : {:>4} templates, avg improvement {:>5.1}%   (paper: 178, 35%)",
        cl.templates_learned,
        cl.avg_improvement * 100.0
    );
}

fn exp2(fast: bool) {
    header("Exp-2 / Figure 10 — Optimizer with GALO versus without");
    let (tp, cl) = exp2_matching_improvement(fast);
    for r in [&tp, &cl] {
        println!(
            "\n[{}] {} queries, {} matched, {} improved, avg gain {:.1}%, cross-workload reuses {}",
            r.workload,
            r.total_queries,
            r.matched_queries,
            r.improved_queries,
            r.avg_gain_improved * 100.0,
            r.cross_workload_reuses
        );
        println!("  re-optimized runtime as % of original (blue bar of Figure 10):");
        for (name, pct) in &r.bars {
            let filled = (pct / 2.0).round() as usize;
            println!(
                "  {:<14} {:>5.1}% |{}",
                name,
                pct,
                "█".repeat(filled.min(50))
            );
        }
    }
    println!("\nPaper: TPC-DS 19/99 matched, avg gain 49%; client 24/116, 40%;");
    println!("6 of 23 improved client queries reused TPC-DS patterns (26%).");
}

fn exp3(fast: bool) {
    header("Exp-3 / Figure 11 — Matching time in # of table-joins");
    let (galo, _, _, tp, cl) = learn_both(fast);
    let rows = exp3_matching_scalability(&galo, &[&tp, &cl]);
    println!(
        "{:>12} | {:>14} | {:>8}",
        "tables <=", "avg match ms", "queries"
    );
    println!("{}", "-".repeat(42));
    for (bucket, ms, n) in rows {
        println!("{bucket:>12} | {ms:>14.3} | {n:>8}");
    }
    println!("\nPaper shape: linear in the number of joins (4.3 ms @15, 34 ms @32).");
}

fn exp4(fast: bool) {
    header("Exp-4 / Figure 12 — Matching-engine routinization");
    let (galo, _, _, tp, _) = learn_both(fast);
    let query_buckets = [10usize, 25, 50, 75, 99];
    let template_counts = [100usize, 250, 500, 1000];
    let rows = exp4_routinization(&tp, &query_buckets, &template_counts, &galo);
    print!("{:>10}", "queries\\KB");
    for t in template_counts {
        print!(" | {t:>9}");
    }
    println!();
    println!("{}", "-".repeat(12 + 12 * template_counts.len()));
    for &q in &query_buckets {
        print!("{q:>10}");
        for &t in &template_counts {
            let secs = rows
                .iter()
                .find(|(rq, rt, _)| *rq == q && *rt == t)
                .map(|(_, _, s)| *s)
                .unwrap_or(f64::NAN);
            print!(" | {secs:>8.2}s");
        }
        println!();
    }
    let worst = rows.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    println!(
        "\nWorst cell: {worst:.1}s — paper bound: 100 queries x 1,000 patterns < 15 min ({}).",
        if worst < 900.0 { "holds" } else { "VIOLATED" }
    );
}

fn exp56(fast: bool) {
    header("Exp-5 / Figure 13 — Time to learn problem patterns (manual vs GALO)");
    let rows = exp56_comparative_study(fast);
    println!(
        "{:<34} | {:>14} | {:>14}",
        "problem pattern", "expert (min)", "GALO (min)"
    );
    println!("{}", "-".repeat(68));
    for r in &rows {
        println!(
            "{:<34} | {:>14.1} | {:>14.1}",
            r.pattern, r.expert_minutes, r.galo_minutes
        );
    }
    let e: f64 = rows.iter().map(|r| r.expert_minutes).sum();
    let g: f64 = rows.iter().map(|r| r.galo_minutes).sum();
    println!(
        "\nTotals: expert {e:.0} min vs GALO {g:.0} min — manual is {:.1}x more expensive (paper: >2x).",
        e / g.max(1e-9)
    );

    header("Exp-6 / Figure 14 — Quality of learned problem patterns");
    println!(
        "{:<34} | {:>14} | {:>12}",
        "problem pattern", "expert improv", "GALO improv"
    );
    println!("{}", "-".repeat(68));
    for r in &rows {
        let expert = if r.expert_found {
            format!("{:>13.1}%", r.expert_improvement_pct)
        } else {
            format!("{:>13}*", "none")
        };
        println!(
            "{:<34} | {:>14} | {:>11.1}%",
            r.pattern, expert, r.galo_improvement_pct
        );
    }
    println!("\n(*) the experts found no fix — the paper reports the same for pattern #2.");
}

fn figs(fast: bool) {
    header("Case studies — the paper's Figures 1, 4, 7, 8 (before/after plans)");
    for cs in case_studies(fast) {
        println!("\n--- {} ---", cs.name);
        println!(
            "runtime: {:.1} ms -> {:.1} ms ({:.1}x), {} rewrite(s) matched",
            cs.before_ms,
            cs.after_ms,
            cs.before_ms / cs.after_ms.max(1e-9),
            cs.matched_rewrites
        );
        println!("optimizer's plan:\n{}", cs.before_plan);
        println!("GALO's plan:\n{}", cs.after_plan);
    }
}

fn evolution(fast: bool) {
    header("Goal 3 — Optimizer evolution report (systemic issues in the KB)");
    let (galo, _, _, _, _) = learn_both(fast);
    let classes = galo_core::evolution_report(&galo.kb);
    println!("{}", galo_core::render_evolution_report(&classes));
    println!("The development team mines these rewrite classes for new optimizer");
    println!("rules — the paper's long-term Goal 3 (\"optimization evolution\").");
}
