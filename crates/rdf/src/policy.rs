//! Workload-adaptive storage policy: a background auto-compactor.
//!
//! The inline `auto_compact_records` check folds the log *on the mutator
//! write path* — the writer that happens to journal the threshold-crossing
//! record pays the whole snapshot-encode + fsync + rotate bill, which is
//! exactly the latency spike a serving tier cannot afford under churn.
//! The [`Compactor`] moves that work to a background thread: it polls
//! per-shard [`StoragePressure`] (WAL records/bytes — one read lock and
//! two counter loads per shard) and triggers [`compact`] one shard at a
//! time, off the write path, under a policy with hysteresis and failure
//! back-off:
//!
//! * **Thresholds** — a shard is compacted when its log reaches
//!   [`CompactionPolicy::wal_records`] records *or*
//!   [`CompactionPolicy::wal_bytes`] bytes, whichever trips first.
//! * **Idle folding (the workload-adaptive part)** — a shard whose log
//!   carries at least `wal_records / idle_divisor` records but saw *no new
//!   writes since the last sweep* is folded early: read-heavy phases pay
//!   for compaction while they are quiet, so the next churn phase starts
//!   from an empty log. Churn-heavy phases are governed by the full
//!   threshold only.
//! * **Hysteresis** — after a successful compaction a shard is left alone
//!   for [`CompactionPolicy::min_interval`], so a hot shard is not
//!   re-folded on every poll.
//! * **Failure back-off** — a failed compaction is counted
//!   ([`CompactorStats::failed`]), its error kept, and the shard's next
//!   attempt delayed by an exponentially growing back-off (capped at
//!   [`CompactionPolicy::max_backoff`]) instead of hot-looping a broken
//!   disk. The store's own `compactions_failed` counter advances too
//!   (failure accounting lives in [`DurableStore::compact`]).
//! * **Clean shutdown** — dropping the [`Compactor`] signals the thread
//!   and joins it; no detached thread outlives the store it watches.
//!
//! [`compact`]: crate::store::TripleStore::compact
//! [`DurableStore::compact`]: crate::persist::DurableStore
//! [`StoragePressure`]: crate::store::StoragePressure

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::store::StoragePressure;

/// What the [`Compactor`] watches and acts on: anything that can report
/// per-shard WAL pressure and compact one shard at a time. Implemented by
/// `FusekiLite`'s backing (single durable store = one "shard"; sharded
/// store = one entry per shard); tests implement it with fakes to pin the
/// policy without touching a disk.
pub trait CompactionTarget: Send + Sync {
    /// Current pressure, one entry per shard, indexed by shard number.
    /// In-memory shards report [`StoragePressure::default`] (all zeros —
    /// never above threshold).
    fn storage_pressures(&self) -> Vec<StoragePressure>;

    /// Fold shard `shard`'s log into a snapshot, holding only that
    /// shard's write lock.
    fn compact_shard(&self, shard: usize) -> io::Result<()>;
}

/// Knobs of the background compaction policy. Construct with struct
/// update syntax over [`Default`]:
///
/// ```
/// use galo_rdf::policy::CompactionPolicy;
/// use std::time::Duration;
/// let policy = CompactionPolicy {
///     wal_records: 512,
///     min_interval: Duration::from_millis(50),
///     ..CompactionPolicy::default()
/// };
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact a shard once its log holds this many records.
    pub wal_records: u64,
    /// Compact a shard once its log holds this many bytes.
    pub wal_bytes: u64,
    /// An idle shard (no new records since the previous sweep) is folded
    /// early at `wal_records / idle_divisor` records. `0` disables idle
    /// folding.
    pub idle_divisor: u64,
    /// Hysteresis: minimum time between successful compactions of the
    /// same shard.
    pub min_interval: Duration,
    /// How often the watcher samples pressure.
    pub poll_interval: Duration,
    /// Delay before retrying a shard whose compaction failed; doubles per
    /// consecutive failure.
    pub failure_backoff: Duration,
    /// Cap on the exponential failure back-off.
    pub max_backoff: Duration,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            wal_records: 4096,
            wal_bytes: 4 << 20,
            idle_divisor: 4,
            min_interval: Duration::from_millis(250),
            poll_interval: Duration::from_millis(20),
            failure_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// Counters the compactor thread publishes; cheap to read from tests,
/// benches and ops code while the thread runs.
#[derive(Debug, Default)]
pub struct CompactorStats {
    triggered: AtomicU64,
    compacted: AtomicU64,
    idle_compacted: AtomicU64,
    failed: AtomicU64,
    sweeps: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl CompactorStats {
    /// Compaction attempts started (successes + failures).
    pub fn triggered(&self) -> u64 {
        self.triggered.load(Ordering::Relaxed)
    }

    /// Successful compactions (threshold-driven and idle together).
    pub fn compacted(&self) -> u64 {
        self.compacted.load(Ordering::Relaxed)
    }

    /// Successful compactions taken on the idle path (subset of
    /// [`compacted`](Self::compacted)).
    pub fn idle_compacted(&self) -> u64 {
        self.idle_compacted.load(Ordering::Relaxed)
    }

    /// Failed compaction attempts.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Pressure sweeps completed.
    pub fn sweeps(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Error text of the most recent failed attempt.
    pub fn last_error(&self) -> Option<String> {
        lock_recovering(&self.last_error).clone()
    }
}

/// A std mutex lock that shrugs off poisoning: the compactor's state is
/// plain data, safe to read after a panicking holder.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shutdown channel between the handle and the thread.
struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The background auto-compactor: owns one watcher thread for the
/// lifetime of the handle. Dropping the handle stops and joins the
/// thread.
pub struct Compactor {
    shared: Arc<Shared>,
    stats: Arc<CompactorStats>,
    policy: CompactionPolicy,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Compactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compactor")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

/// Per-shard pacing state the watcher thread keeps between sweeps.
#[derive(Debug, Default, Clone)]
struct ShardClock {
    /// Earliest instant the next attempt on this shard is allowed
    /// (hysteresis after a success, back-off after a failure).
    next_allowed: Option<Instant>,
    /// Consecutive failed attempts (drives the exponential back-off).
    consecutive_failures: u32,
    /// `wal_records` observed at the previous sweep (idle detection).
    last_records: u64,
}

impl Compactor {
    /// Spawn the watcher thread over `target` under `policy`.
    pub fn spawn(target: Arc<dyn CompactionTarget>, policy: CompactionPolicy) -> Compactor {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let stats = Arc::new(CompactorStats::default());
        let handle = {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            let policy = policy.clone();
            std::thread::Builder::new()
                .name("galo-compactor".into())
                .spawn(move || run(&*target, &policy, &shared, &stats))
                .expect("compactor watcher thread spawns")
        };
        Compactor {
            shared,
            stats,
            policy,
            handle: Some(handle),
        }
    }

    /// A handle to the live counters (usable while the thread runs and
    /// after it stops).
    pub fn stats(&self) -> Arc<CompactorStats> {
        Arc::clone(&self.stats)
    }

    /// The policy the watcher runs under.
    pub fn policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Signal the watcher thread and join it. Idempotent; also runs on
    /// drop. After `stop` returns no further compactions are triggered.
    pub fn stop(&mut self) {
        *lock_recovering(&self.shared.stop) = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The watcher loop: sweep, sleep on the shutdown condvar for
/// `poll_interval`, repeat until stopped.
fn run(
    target: &dyn CompactionTarget,
    policy: &CompactionPolicy,
    shared: &Shared,
    stats: &CompactorStats,
) {
    let mut clocks: Vec<ShardClock> = Vec::new();
    loop {
        {
            let mut stop = lock_recovering(&shared.stop);
            if *stop {
                return;
            }
            let (guard, _) = shared
                .wake
                .wait_timeout(stop, policy.poll_interval)
                .unwrap_or_else(|e| e.into_inner());
            stop = guard;
            if *stop {
                return;
            }
        }
        sweep(target, policy, stats, &mut clocks);
        stats.sweeps.fetch_add(1, Ordering::Relaxed);
    }
}

/// One pressure sweep over every shard.
fn sweep(
    target: &dyn CompactionTarget,
    policy: &CompactionPolicy,
    stats: &CompactorStats,
    clocks: &mut Vec<ShardClock>,
) {
    let pressures = target.storage_pressures();
    clocks.resize(pressures.len(), ShardClock::default());
    for (shard, pressure) in pressures.iter().enumerate() {
        let clock = &mut clocks[shard];
        let idle = pressure.wal_records == clock.last_records;
        clock.last_records = pressure.wal_records;
        let over_threshold =
            pressure.wal_records >= policy.wal_records || pressure.wal_bytes >= policy.wal_bytes;
        let idle_fold = policy.idle_divisor > 0
            && idle
            && pressure.wal_records > 0
            && pressure.wal_records >= policy.wal_records / policy.idle_divisor;
        if !(over_threshold || idle_fold) {
            continue;
        }
        let now = Instant::now();
        if clock.next_allowed.is_some_and(|t| now < t) {
            continue; // hysteresis or failure back-off window
        }
        stats.triggered.fetch_add(1, Ordering::Relaxed);
        match target.compact_shard(shard) {
            Ok(()) => {
                stats.compacted.fetch_add(1, Ordering::Relaxed);
                if !over_threshold {
                    stats.idle_compacted.fetch_add(1, Ordering::Relaxed);
                }
                clock.consecutive_failures = 0;
                clock.last_records = 0;
                clock.next_allowed = Some(Instant::now() + policy.min_interval);
            }
            Err(e) => {
                stats.failed.fetch_add(1, Ordering::Relaxed);
                *lock_recovering(&stats.last_error) = Some(e.to_string());
                let exp = clock.consecutive_failures.min(16);
                clock.consecutive_failures = clock.consecutive_failures.saturating_add(1);
                let backoff = policy
                    .failure_backoff
                    .checked_mul(1u32 << exp)
                    .unwrap_or(policy.max_backoff)
                    .min(policy.max_backoff);
                clock.next_allowed = Some(Instant::now() + backoff);
                eprintln!(
                    "background compactor: shard {shard} compaction failed \
                     (attempt {}, backing off {backoff:?}): {e}",
                    clock.consecutive_failures
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A diskless target: per-shard record counters the test mutates, a
    /// failure switch, and a log of compacted shards.
    #[derive(Debug, Default)]
    struct FakeTarget {
        records: Vec<AtomicU64>,
        fail: AtomicBool,
        compactions: Mutex<Vec<usize>>,
    }

    impl FakeTarget {
        fn with_shards(n: usize) -> Arc<FakeTarget> {
            Arc::new(FakeTarget {
                records: (0..n).map(|_| AtomicU64::new(0)).collect(),
                ..FakeTarget::default()
            })
        }

        fn compactions(&self) -> Vec<usize> {
            lock_recovering(&self.compactions).clone()
        }
    }

    impl CompactionTarget for FakeTarget {
        fn storage_pressures(&self) -> Vec<StoragePressure> {
            self.records
                .iter()
                .map(|r| StoragePressure {
                    wal_records: r.load(Ordering::Relaxed),
                    wal_bytes: r.load(Ordering::Relaxed) * 32,
                    ..StoragePressure::default()
                })
                .collect()
        }

        fn compact_shard(&self, shard: usize) -> io::Result<()> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(io::Error::other("injected compaction failure"));
            }
            self.records[shard].store(0, Ordering::Relaxed);
            lock_recovering(&self.compactions).push(shard);
            Ok(())
        }
    }

    /// A policy fast enough for tests: 1 ms polls, no idle folding unless
    /// a test asks for it.
    fn fast_policy() -> CompactionPolicy {
        CompactionPolicy {
            wal_records: 10,
            wal_bytes: u64::MAX,
            idle_divisor: 0,
            min_interval: Duration::from_millis(1),
            poll_interval: Duration::from_millis(1),
            failure_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// Spin until `cond` holds or ~5 s pass (single-CPU CI is slow).
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn below_threshold_never_compacts() {
        let target = FakeTarget::with_shards(2);
        target.records[0].store(9, Ordering::Relaxed);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        let stats = compactor.stats();
        assert!(eventually(|| stats.sweeps() >= 20));
        assert_eq!(stats.triggered(), 0);
        assert!(target.compactions().is_empty());
    }

    #[test]
    fn over_threshold_compacts_only_the_hot_shard() {
        let target = FakeTarget::with_shards(3);
        target.records[1].store(25, Ordering::Relaxed);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        let stats = compactor.stats();
        assert!(eventually(|| stats.compacted() >= 1));
        assert_eq!(target.compactions(), vec![1]);
        assert_eq!(target.records[1].load(Ordering::Relaxed), 0);
        assert_eq!(stats.failed(), 0);
        assert_eq!(stats.last_error(), None);
    }

    #[test]
    fn hysteresis_spaces_out_compactions_of_a_hot_shard() {
        let target = FakeTarget::with_shards(1);
        target.records[0].store(100, Ordering::Relaxed);
        let policy = CompactionPolicy {
            // Pressure is re-applied below faster than it is folded, but
            // a long min_interval must keep the fold count at one.
            min_interval: Duration::from_secs(600),
            ..fast_policy()
        };
        let compactor = Compactor::spawn(Arc::clone(&target) as _, policy);
        let stats = compactor.stats();
        assert!(eventually(|| stats.compacted() == 1));
        target.records[0].store(100, Ordering::Relaxed); // pressure is back
        assert!(eventually(|| stats.sweeps() >= 50));
        assert_eq!(
            stats.compacted(),
            1,
            "hysteresis must hold the second fold back"
        );
    }

    #[test]
    fn failure_backs_off_instead_of_hot_looping() {
        let target = FakeTarget::with_shards(1);
        target.records[0].store(100, Ordering::Relaxed);
        target.fail.store(true, Ordering::Relaxed);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        let stats = compactor.stats();
        assert!(eventually(|| stats.failed() >= 2));
        let failed_then = stats.failed();
        let sweeps_then = stats.sweeps();
        assert!(eventually(|| stats.sweeps() >= sweeps_then + 30));
        // Dozens of sweeps later the attempt count has grown far slower
        // than the sweep count: the back-off is real.
        assert!(
            stats.failed() - failed_then < 10,
            "attempts {} -> {} over 30+ sweeps is hot-looping",
            failed_then,
            stats.failed()
        );
        assert!(stats
            .last_error()
            .is_some_and(|e| e.contains("injected compaction failure")));
        // The disk heals: the next allowed attempt succeeds and the
        // failure streak resets.
        target.fail.store(false, Ordering::Relaxed);
        assert!(eventually(|| stats.compacted() >= 1));
        assert_eq!(target.records[0].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn idle_shard_folds_early() {
        let target = FakeTarget::with_shards(1);
        // 5 records: half the 10-record threshold, above 10/4. No new
        // writes arrive, so the idle path must fold it.
        target.records[0].store(5, Ordering::Relaxed);
        let policy = CompactionPolicy {
            idle_divisor: 4,
            ..fast_policy()
        };
        let compactor = Compactor::spawn(Arc::clone(&target) as _, policy);
        let stats = compactor.stats();
        assert!(eventually(|| stats.idle_compacted() >= 1));
        assert_eq!(target.records[0].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn idle_folding_disabled_by_zero_divisor() {
        let target = FakeTarget::with_shards(1);
        target.records[0].store(5, Ordering::Relaxed);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        let stats = compactor.stats();
        assert!(eventually(|| stats.sweeps() >= 20));
        assert_eq!(stats.triggered(), 0);
    }

    #[test]
    fn drop_stops_and_joins_the_thread() {
        let target = FakeTarget::with_shards(1);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        let stats = compactor.stats();
        assert!(eventually(|| stats.sweeps() >= 1));
        drop(compactor);
        let sweeps = stats.sweeps();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(stats.sweeps(), sweeps, "thread must not outlive the handle");
        // A stopped compactor leaves pressure alone.
        target.records[0].store(100, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(target.records[0].load(Ordering::Relaxed), 100);
    }

    #[test]
    fn stop_is_idempotent() {
        let target = FakeTarget::with_shards(1);
        let mut compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        compactor.stop();
        compactor.stop();
        drop(compactor);
    }

    #[test]
    fn grows_clocks_when_shards_appear() {
        // A target whose shard count grows between sweeps (single store
        // targets report one entry; resize must not panic).
        let target = FakeTarget::with_shards(4);
        let compactor = Compactor::spawn(Arc::clone(&target) as _, fast_policy());
        target.records[3].store(50, Ordering::Relaxed);
        let stats = compactor.stats();
        assert!(eventually(|| stats.compacted() >= 1));
        assert_eq!(target.compactions(), vec![3]);
    }
}
