//! Sharded triple storage: [`ShardedStore`], a [`TripleStore`] over N
//! inner stores with per-shard locking.
//!
//! The knowledge base is a shared service: every optimized query probes
//! it online while off-peak learning runs append to it. The single-store
//! backends serialize all of that behind `FusekiLite`'s one `RwLock`;
//! [`ShardedStore`] partitions the default graph across N inner stores —
//! each behind its own lock — so writes to *different* shards proceed
//! concurrently, batched probes are served by parallel workers over one
//! consistent read session, and recovery/compaction of a durable store
//! fan out across shard directories.
//!
//! # Architecture
//!
//! * **Placement** is a pluggable [`ShardRouter`] policy, consulted once
//!   per mutation. The default [`TemplateRouter`] keys template-shaped
//!   subjects (`<ns><template-id>` and `<ns><template-id>/pop/<k>`) by
//!   their template id, so a whole problem-pattern template — operator
//!   nodes, stream edges, guideline, workload tag — lives on one shard;
//!   anything else falls back to a subject hash. Placement is a
//!   *performance* policy only: reads never trust it.
//! * **Reads fan out.** `scan`/`count`/`scan_in`/`graph_names` visit
//!   every shard in index order and merge, so result order is
//!   deterministic for a given content. A shard that has never interned
//!   one of a pattern's bound terms is rejected by a single map lookup,
//!   so fan-out overhead on keyed probes stays near zero.
//! * **Terms are interned twice.** The sharded store owns a
//!   stripe-locked, lock-free-read shared interner issuing the global
//!   [`TermId`]s every caller sees; each shard's inner store keeps its
//!   own interner (a durable shard journals *terms*, and its snapshots
//!   must stay self-contained), and the shard state carries the
//!   global↔local id translation. On durable reopen the translation is
//!   rebuilt from the recovered triples, shards in parallel.
//! * **Sessions.** [`ShardedStore::read_session`] /
//!   [`write_session`](ShardedStore::write_session) take all per-shard
//!   locks in index order and expose the store as one `TripleStore`, so
//!   the SPARQL evaluator and the matching engine run against a stable
//!   view; the concurrent write path ([`insert_terms_batch`] and
//!   friends) locks only the shards a batch actually routes to.
//!
//! # On-disk layout (durable sharding)
//!
//! ```text
//! kb.galo/
//!   sharded.meta     shard count + router name (validated on reopen)
//!   shard-0000/      one DurableStore directory per shard
//!     snapshot-…
//!     wal-…
//!   shard-0001/
//!   …
//! ```
//!
//! [`insert_terms_batch`]: ShardedStore::insert_terms_batch

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::OnceLock;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::fnv::{fnv1a, fnv1a_with, FNV_OFFSET};
use crate::persist::{DurableOptions, DurableStore};
use crate::store::{IndexedStore, StoragePressure, Triple, TripleStore};
use crate::term::{Term, TermId};

// ------------------------------------------------------ shared interner --

/// FNV-1a 64 over a term's tag and text (deterministic across runs, which
/// routing and striping both require — `std`'s hasher is seeded).
fn term_hash(term: &Term) -> u64 {
    let (tag, text): (u8, &str) = match term {
        Term::Iri(s) => (0, s),
        Term::Literal(l) => (1, &l.lexical),
        Term::Blank(b) => (2, b),
    };
    fnv1a_with(fnv1a(&[tag]), text.as_bytes())
}

/// FNV-1a hasher for the hot-path maps: the id-translation tables are
/// keyed by already-well-distributed `u32` ids and the interner stripes
/// by short strings — SipHash's DoS hardening buys nothing here and
/// costs on every probe scan.
#[derive(Default, Clone)]
struct FnvState(u64);

impl std::hash::Hasher for FnvState {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let seed = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        self.0 = fnv1a_with(seed, bytes);
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvState>;

/// Interner stripes: independent locks, so concurrent writers interning
/// different terms rarely contend.
const STRIPES: u32 = 8;
/// First term-table chunk size; chunk `c` holds `CHUNK0 << c` terms.
const CHUNK0: usize = 256;
/// 256 · (2²⁴ − 1) slots ≈ 4.3 B — covers the full `u32` id space.
const MAX_CHUNKS: usize = 24;

/// Append-only term table with address-stable slots: resolving never
/// takes a lock. Slots live in geometrically-growing boxed chunks, so a
/// written `Term` never moves; `OnceLock` publication makes the read
/// race-free against the (stripe-lock-serialized) writer.
struct TermChunks {
    chunks: [OnceLock<Box<[OnceLock<Term>]>>; MAX_CHUNKS],
}

impl TermChunks {
    fn new() -> Self {
        TermChunks {
            chunks: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// `(chunk, offset)` of a dense index: chunk `c` starts at
    /// `CHUNK0·(2^c − 1)` and holds `CHUNK0·2^c` slots.
    fn locate(index: usize) -> (usize, usize) {
        let m = index / CHUNK0 + 1;
        let chunk = (usize::BITS - 1 - m.leading_zeros()) as usize;
        (chunk, index - CHUNK0 * ((1usize << chunk) - 1))
    }

    fn get(&self, index: usize) -> Option<&Term> {
        let (chunk, offset) = Self::locate(index);
        self.chunks.get(chunk)?.get()?.get(offset)?.get()
    }

    fn set(&self, index: usize, term: Term) {
        let (chunk, offset) = Self::locate(index);
        assert!(chunk < MAX_CHUNKS, "sharded interner capacity exceeded");
        let slots = self.chunks[chunk]
            .get_or_init(|| (0..(CHUNK0 << chunk)).map(|_| OnceLock::new()).collect());
        slots[offset]
            .set(term)
            .expect("interner slot is written exactly once");
    }
}

impl fmt::Debug for TermChunks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let chunks = self.chunks.iter().filter(|c| c.get().is_some()).count();
        write!(f, "TermChunks({chunks} chunks)")
    }
}

#[derive(Debug)]
struct Stripe {
    lookup: RwLock<HashMap<Term, TermId, FnvBuild>>,
    terms: TermChunks,
}

/// The sharded store's global interner: striped write locks, lock-free
/// resolution. Ids interleave stripes (`id = index·STRIPES + stripe`), so
/// they are dense-ish but **not** contiguous — nothing in the
/// [`TripleStore`] contract requires contiguity.
pub(crate) struct SharedInterner {
    stripes: Vec<Stripe>,
}

impl SharedInterner {
    fn new() -> Self {
        SharedInterner {
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    lookup: RwLock::new(HashMap::default()),
                    terms: TermChunks::new(),
                })
                .collect(),
        }
    }

    fn stripe_of(term: &Term) -> usize {
        (term_hash(term) % STRIPES as u64) as usize
    }

    pub(crate) fn get(&self, term: &Term) -> Option<TermId> {
        self.stripes[Self::stripe_of(term)]
            .lookup
            .read()
            .get(term)
            .copied()
    }

    /// Intern by reference: the term is cloned only on first sighting.
    pub(crate) fn intern(&self, term: &Term) -> TermId {
        let si = Self::stripe_of(term);
        let stripe = &self.stripes[si];
        if let Some(&id) = stripe.lookup.read().get(term) {
            return id;
        }
        let mut lookup = stripe.lookup.write();
        if let Some(&id) = lookup.get(term) {
            return id;
        }
        let index = lookup.len();
        let raw = index as u64 * STRIPES as u64 + si as u64;
        let id = TermId(u32::try_from(raw).expect("interner id space exhausted"));
        stripe.terms.set(index, term.clone());
        lookup.insert(term.clone(), id);
        id
    }

    pub(crate) fn resolve(&self, id: TermId) -> &Term {
        let si = (id.0 % STRIPES) as usize;
        let index = (id.0 / STRIPES) as usize;
        self.stripes[si]
            .terms
            .get(index)
            .expect("resolve of an id this interner never issued")
    }

    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lookup.read().len()).sum()
    }
}

impl fmt::Debug for SharedInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedInterner({} terms)", self.len())
    }
}

// --------------------------------------------------------------- router --

/// Placement policy: which shard a triple is written to.
///
/// Routing must be **deterministic and stable across process runs** — a
/// durable sharded store persists its placement, and removes are routed
/// the same way inserts were. It is consulted with the triple's resolved
/// terms; named-graph tags route by the same rule (their subject). Reads
/// never depend on the router (they fan out), so a router only shapes
/// locality and write balance, never visibility.
pub trait ShardRouter: fmt::Debug + Send + Sync {
    /// Stable identifier recorded in `sharded.meta` and validated on
    /// durable reopen, so a store is never silently opened under a
    /// different placement policy.
    fn name(&self) -> String;

    /// Shard index in `0..shards` for a triple.
    fn route(&self, shards: usize, s: &Term, p: &Term, o: &Term) -> usize;
}

/// The default router: template-affine placement.
///
/// Subjects under the knowledge base's template namespace —
/// `<ns><template-id>` and `<ns><template-id>/pop/<k>` — are keyed by the
/// template id alone, so every triple of one learned template (operator
/// properties, stream edges, guideline document, workload tag) lands on
/// the same shard and a matching probe's keyed lookups miss all other
/// shards at translation time. Everything else hashes the whole subject.
#[derive(Debug, Clone)]
pub struct TemplateRouter {
    /// IRI prefix of template resources (the GALO KB default).
    pub template_ns: String,
}

impl Default for TemplateRouter {
    fn default() -> Self {
        TemplateRouter {
            template_ns: "http://galo/kb/template/".to_string(),
        }
    }
}

impl ShardRouter for TemplateRouter {
    fn name(&self) -> String {
        format!("template:{}", self.template_ns)
    }

    fn route(&self, shards: usize, s: &Term, _p: &Term, _o: &Term) -> usize {
        if let Some(rest) = s
            .as_iri()
            .and_then(|iri| iri.strip_prefix(&self.template_ns))
        {
            let id = rest.split('/').next().unwrap_or(rest);
            return (fnv1a(id.as_bytes()) % shards as u64) as usize;
        }
        (term_hash(s) % shards as u64) as usize
    }
}

/// Plain subject-hash placement (no namespace affinity).
#[derive(Debug, Clone, Default)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn name(&self) -> String {
        "hash".to_string()
    }

    fn route(&self, shards: usize, s: &Term, _p: &Term, _o: &Term) -> usize {
        (term_hash(s) % shards as u64) as usize
    }
}

// ---------------------------------------------------------- shard state --

/// One shard: its inner store plus the global↔local id translation.
///
/// Invariant: every local id that appears in any of the inner store's
/// triples (default or named graph) is mapped in `to_global`; every
/// global id this shard has ever stored is mapped in `to_local`.
#[derive(Debug)]
struct ShardState {
    store: Box<dyn TripleStore>,
    /// Global id → shard-local id.
    to_local: HashMap<TermId, TermId, FnvBuild>,
    /// Shard-local id (dense) → global id; `u32::MAX` marks a local term
    /// that no stored triple references (e.g. snapshot-preserved unused
    /// interned terms).
    to_global: Vec<TermId>,
}

const UNMAPPED: TermId = TermId(u32::MAX);

impl ShardState {
    fn fresh(store: Box<dyn TripleStore>) -> Self {
        ShardState {
            store,
            to_local: HashMap::default(),
            to_global: Vec::new(),
        }
    }

    fn map_pair(&mut self, global: TermId, local: TermId) {
        let idx = local.0 as usize;
        if idx >= self.to_global.len() {
            self.to_global.resize(idx + 1, UNMAPPED);
        }
        self.to_global[idx] = global;
        self.to_local.insert(global, local);
    }

    fn local(&self, global: TermId) -> Option<TermId> {
        self.to_local.get(&global).copied()
    }

    fn global(&self, local: TermId) -> TermId {
        let g = self.to_global[local.0 as usize];
        debug_assert_ne!(g, UNMAPPED, "scanned local id must be mapped");
        g
    }

    /// Local id for a global term, interning it into the shard store on
    /// first sighting.
    fn ensure_local(&mut self, global: TermId, interner: &SharedInterner) -> TermId {
        if let Some(l) = self.local(global) {
            return l;
        }
        let local = self.store.intern(interner.resolve(global).clone());
        self.map_pair(global, local);
        local
    }

    fn globalize(&self, (s, p, o): Triple) -> Triple {
        (self.global(s), self.global(p), self.global(o))
    }

    /// Translate a fully-bound global triple; `None` when any term was
    /// never seen by this shard (so the triple cannot be stored here).
    fn localize(&self, (s, p, o): Triple) -> Option<Triple> {
        Some((self.local(s)?, self.local(p)?, self.local(o)?))
    }

    fn insert_global(&mut self, t: Triple, interner: &SharedInterner) -> bool {
        let lt = (
            self.ensure_local(t.0, interner),
            self.ensure_local(t.1, interner),
            self.ensure_local(t.2, interner),
        );
        self.store.insert_ids(lt)
    }

    fn remove_global(&mut self, t: Triple) -> bool {
        match self.localize(t) {
            Some(lt) => self.store.remove_ids(lt),
            None => false,
        }
    }

    fn insert_in_global(&mut self, graph: TermId, t: Triple, interner: &SharedInterner) -> bool {
        let g = self.ensure_local(graph, interner);
        let lt = (
            self.ensure_local(t.0, interner),
            self.ensure_local(t.1, interner),
            self.ensure_local(t.2, interner),
        );
        self.store.insert_ids_in(g, lt)
    }

    fn remove_in_global(&mut self, graph: TermId, t: Triple) -> bool {
        match (self.local(graph), self.localize(t)) {
            (Some(g), Some(lt)) => self.store.remove_ids_in(g, lt),
            _ => false,
        }
    }

    /// Translate a pattern's bound positions to local ids; a miss means
    /// the pattern matches nothing in this shard.
    fn localize_pattern(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Option<(Option<TermId>, Option<TermId>, Option<TermId>)> {
        let lift = |g: Option<TermId>| -> Option<Option<TermId>> {
            match g {
                Some(g) => self.local(g).map(Some),
                None => Some(None),
            }
        };
        Some((lift(s)?, lift(p)?, lift(o)?))
    }

    fn scan_global(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        match self.localize_pattern(s, p, o) {
            Some((ls, lp, lo)) => self
                .store
                .scan(ls, lp, lo)
                .into_iter()
                .map(|t| self.globalize(t))
                .collect(),
            None => Vec::new(),
        }
    }

    fn count_global(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match self.localize_pattern(s, p, o) {
            Some((ls, lp, lo)) => self.store.count(ls, lp, lo),
            None => 0,
        }
    }

    fn scan_in_global(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        let Some(g) = self.local(graph) else {
            return Vec::new();
        };
        match self.localize_pattern(s, p, o) {
            Some((ls, lp, lo)) => self
                .store
                .scan_in(g, ls, lp, lo)
                .into_iter()
                .map(|t| self.globalize(t))
                .collect(),
            None => Vec::new(),
        }
    }

    fn graph_ids_global(&self) -> Vec<TermId> {
        self.store
            .graph_ids()
            .into_iter()
            .map(|g| self.global(g))
            .collect()
    }

    /// Rebuild the id translation from the inner store's recovered
    /// triples (durable reopen: shard-local ids are fresh).
    fn rebuild_translation(&mut self, interner: &SharedInterner) {
        let map_local = |state: &mut ShardState, l: TermId| {
            let idx = l.0 as usize;
            if idx < state.to_global.len() && state.to_global[idx] != UNMAPPED {
                return;
            }
            let g = interner.intern(state.store.resolve(l));
            state.map_pair(g, l);
        };
        for (s, p, o) in self.store.scan(None, None, None) {
            for id in [s, p, o] {
                map_local(self, id);
            }
        }
        for g in self.store.graph_ids() {
            map_local(self, g);
            for (s, p, o) in self.store.scan_in(g, None, None, None) {
                for id in [s, p, o] {
                    map_local(self, id);
                }
            }
        }
    }
}

// --------------------------------------------------------- fan-out reads --

fn fan_scan<'g>(
    states: impl Iterator<Item = &'g ShardState>,
    s: Option<TermId>,
    p: Option<TermId>,
    o: Option<TermId>,
) -> Vec<Triple> {
    // Shards are visited in index order and each shard's results are
    // deterministic, so the merged order is deterministic for a given
    // store content — no re-sort needed on the probe hot path.
    let mut out = Vec::new();
    for state in states {
        out.extend(state.scan_global(s, p, o));
    }
    out
}

fn fan_count<'g>(
    states: impl Iterator<Item = &'g ShardState>,
    s: Option<TermId>,
    p: Option<TermId>,
    o: Option<TermId>,
) -> usize {
    states.map(|state| state.count_global(s, p, o)).sum()
}

fn fan_scan_in<'g>(
    states: impl Iterator<Item = &'g ShardState>,
    graph: TermId,
    s: Option<TermId>,
    p: Option<TermId>,
    o: Option<TermId>,
) -> Vec<Triple> {
    let mut out = Vec::new();
    for state in states {
        out.extend(state.scan_in_global(graph, s, p, o));
    }
    out
}

/// Non-empty named graphs across shards: `(name, global id)` pairs,
/// deduplicated (a graph may have tags on several shards) and sorted by
/// name for a deterministic enumeration order. Dedup happens at the id
/// level — global ids are unique per term — so each unique graph is
/// resolved and cloned once, not once per shard.
fn fan_graphs<'g>(
    states: impl Iterator<Item = &'g ShardState>,
    interner: &SharedInterner,
) -> Vec<(Term, TermId)> {
    let mut ids: BTreeSet<TermId> = BTreeSet::new();
    for state in states {
        ids.extend(state.graph_ids_global());
    }
    let mut graphs: Vec<(Term, TermId)> = ids
        .into_iter()
        .map(|g| (interner.resolve(g).clone(), g))
        .collect();
    graphs.sort();
    graphs
}

// -------------------------------------------------------------- the store --

/// Per-shard size summary (see [`ShardedStore::shard_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Default-graph triples stored on the shard.
    pub triples: usize,
    /// Non-empty named graphs with tags on the shard.
    pub graphs: usize,
    /// Named-graph tag triples stored on the shard, over all graphs —
    /// with per-workload datasets this is how many dataset memberships
    /// (e.g. learned templates) the shard holds.
    pub graph_triples: usize,
    /// Records in the shard's current write-ahead log (0 when the shard
    /// backend is not durable).
    pub wal_records: u64,
    /// Bytes in the shard's current write-ahead log (0 when not durable).
    pub wal_bytes: u64,
    /// Failed compaction attempts on the shard since open.
    pub compactions_failed: u64,
}

const META_FILE: &str = "sharded.meta";
const META_MAGIC: &str = "galo-sharded v1";

/// A sharded [`TripleStore`]: N inner stores behind per-shard locks.
///
/// Implements the full `TripleStore` contract (so it drops into
/// `FusekiLite::with_backend` / `KnowledgeBase::with_backend` like any
/// other backend), and additionally exposes the concurrent `&self` API
/// the sharded `FusekiLite` paths use: [`insert_terms_batch`] /
/// [`remove_terms_batch`] / [`insert_terms_batch_in`] lock only the
/// shards a batch routes to, and [`read_session`] / [`write_session`]
/// provide whole-store transactions.
///
/// [`insert_terms_batch`]: Self::insert_terms_batch
/// [`remove_terms_batch`]: Self::remove_terms_batch
/// [`insert_terms_batch_in`]: Self::insert_terms_batch_in
/// [`read_session`]: Self::read_session
/// [`write_session`]: Self::write_session
pub struct ShardedStore {
    interner: SharedInterner,
    router: Box<dyn ShardRouter>,
    shards: Vec<RwLock<ShardState>>,
}

impl fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("router", &self.router)
            .field("interner", &self.interner)
            .finish()
    }
}

impl ShardedStore {
    /// An in-memory sharded store over `shards` [`IndexedStore`]s with
    /// the default [`TemplateRouter`].
    pub fn new(shards: usize) -> Self {
        Self::with_router(shards, Box::<TemplateRouter>::default())
    }

    /// [`new`](Self::new) with an explicit routing policy.
    pub fn with_router(shards: usize, router: Box<dyn ShardRouter>) -> Self {
        assert!(shards >= 1, "a sharded store needs at least one shard");
        ShardedStore {
            interner: SharedInterner::new(),
            router,
            shards: (0..shards)
                .map(|_| RwLock::new(ShardState::fresh(Box::<IndexedStore>::default())))
                .collect(),
        }
    }

    /// Open (or create) a durable sharded store: one
    /// [`DurableStore`] WAL+snapshot directory per shard under `dir`,
    /// recovered in parallel, with the default router and options.
    pub fn open_durable(dir: impl AsRef<Path>, shards: usize) -> io::Result<Self> {
        Self::open_durable_with(
            dir,
            shards,
            DurableOptions::default(),
            Box::<TemplateRouter>::default(),
        )
    }

    /// [`open_durable`](Self::open_durable) with explicit per-shard
    /// [`DurableOptions`] and router. The shard count and router name are
    /// persisted in `sharded.meta` on first open and validated on every
    /// later one: reopening under a different partitioning would strand
    /// triples on shards their router no longer routes to, so a mismatch
    /// is a loud error, never silent misplacement.
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        shards: usize,
        options: DurableOptions,
        router: Box<dyn ShardRouter>,
    ) -> io::Result<Self> {
        assert!(shards >= 1, "a sharded store needs at least one shard");
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let meta_path = dir.join(META_FILE);
        match fs::read_to_string(&meta_path) {
            Ok(meta) => validate_meta(&meta, shards, router.as_ref(), dir)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Same write discipline as snapshots (temp + fsync +
                // atomic rename): a crash mid-write must not leave a
                // truncated meta file that bricks an otherwise fully
                // recoverable store.
                let tmp = dir.join(".sharded.meta.tmp");
                {
                    use std::io::Write;
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(
                        format!("{META_MAGIC}\nshards {shards}\nrouter {}\n", router.name())
                            .as_bytes(),
                    )?;
                    f.sync_all()?;
                }
                fs::rename(&tmp, &meta_path)?;
            }
            Err(e) => return Err(e),
        }
        let interner = SharedInterner::new();
        // Recover every shard in parallel: open (snapshot load + log
        // replay) and global-id translation rebuild are per-shard work;
        // the shared interner is internally synchronized.
        let states = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|k| {
                    let shard_dir = dir.join(format!("shard-{k:04}"));
                    let options = options.clone();
                    let interner = &interner;
                    scope.spawn(move || -> io::Result<ShardState> {
                        let store = DurableStore::open_with(shard_dir, options)?;
                        let mut state = ShardState::fresh(Box::new(store));
                        state.rebuild_translation(interner);
                        Ok(state)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard recovery must not panic"))
                .collect::<io::Result<Vec<_>>>()
        })?;
        Ok(ShardedStore {
            interner,
            router,
            shards: states.into_iter().map(RwLock::new).collect(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard triple and named-graph counts (placement diagnostics).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, lock)| {
                let state = lock.read();
                let graph_ids = state.store.graph_ids();
                let pressure = state.store.storage_pressure().unwrap_or_default();
                ShardStats {
                    shard,
                    triples: state.store.len(),
                    graphs: graph_ids.len(),
                    graph_triples: graph_ids
                        .iter()
                        .map(|&g| state.store.scan_in(g, None, None, None).len())
                        .sum(),
                    wal_records: pressure.wal_records,
                    wal_bytes: pressure.wal_bytes,
                    compactions_failed: pressure.compactions_failed,
                }
            })
            .collect()
    }

    /// Per-shard write-ahead-log pressure, cheap enough for a policy
    /// thread to poll: one read lock and a couple of counter loads per
    /// shard, no scans (unlike [`shard_stats`](Self::shard_stats)).
    /// In-memory shards report [`StoragePressure::default`] (all zeros).
    pub fn storage_pressures(&self) -> Vec<StoragePressure> {
        self.shards
            .iter()
            .map(|lock| lock.read().store.storage_pressure().unwrap_or_default())
            .collect()
    }

    /// Compact a single shard, holding only that shard's write lock — the
    /// background [`Compactor`](crate::policy::Compactor) folds shards one
    /// at a time so writers to other shards never stall behind a rotation
    /// (unlike [`compact_all`](Self::compact_all)'s whole-store fan-out).
    pub fn compact_shard(&self, shard: usize) -> io::Result<()> {
        let lock = self.shards.get(shard).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {shard} out of range ({} shards)", self.shards.len()),
            )
        })?;
        lock.write().store.compact()
    }

    /// Route an interned triple through the placement policy.
    fn route_global(&self, t: Triple) -> usize {
        self.router.route(
            self.shards.len(),
            self.interner.resolve(t.0),
            self.interner.resolve(t.1),
            self.interner.resolve(t.2),
        )
    }

    /// Take read locks on every shard, in index order, and expose the
    /// store as one consistent [`TripleStore`] view. Concurrent read
    /// sessions coexist; writers wait.
    pub fn read_session(&self) -> ShardedReadSession<'_> {
        ShardedReadSession {
            owner: self,
            guards: self.shards.iter().map(|s| s.read()).collect(),
        }
    }

    /// Take write locks on every shard (a whole-store transaction, used
    /// for `import`/`update`-style exclusive rewrites).
    pub fn write_session(&self) -> ShardedWriteSession<'_> {
        ShardedWriteSession {
            owner: self,
            guards: self.shards.iter().map(|s| s.write()).collect(),
        }
    }

    /// Insert a batch of term triples, locking **only the shards the
    /// batch routes to** — concurrent writers whose batches land on
    /// different shards proceed in parallel. Each touched shard gets one
    /// group-commit bracket (one journal flush per shard per batch on a
    /// durable backend). Returns how many triples were new.
    pub fn insert_terms_batch(
        &self,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> usize {
        let mut routed: Vec<Vec<Triple>> = vec![Vec::new(); self.shards.len()];
        for (s, p, o) in triples {
            let k = self.router.route(self.shards.len(), &s, &p, &o);
            routed[k].push((
                self.interner.intern(&s),
                self.interner.intern(&p),
                self.interner.intern(&o),
            ));
        }
        let mut added = 0;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[k].write();
            shard.store.begin_batch();
            for t in batch {
                if shard.insert_global(t, &self.interner) {
                    added += 1;
                }
            }
            shard.store.end_batch();
        }
        added
    }

    /// Batched named-graph tagging, routed like
    /// [`insert_terms_batch`](Self::insert_terms_batch) (by subject, so a
    /// template's tag lives with its triples).
    pub fn insert_terms_batch_in(
        &self,
        graph: Term,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> usize {
        let g = self.interner.intern(&graph);
        let mut routed: Vec<Vec<Triple>> = vec![Vec::new(); self.shards.len()];
        for (s, p, o) in triples {
            let k = self.router.route(self.shards.len(), &s, &p, &o);
            routed[k].push((
                self.interner.intern(&s),
                self.interner.intern(&p),
                self.interner.intern(&o),
            ));
        }
        let mut added = 0;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[k].write();
            shard.store.begin_batch();
            for t in batch {
                if shard.insert_in_global(g, t, &self.interner) {
                    added += 1;
                }
            }
            shard.store.end_batch();
        }
        added
    }

    /// Insert a mixed batch of default-graph triples (`graph: None`) and
    /// named-graph tags (`graph: Some(g)`) in one pass — the publish
    /// endpoint a learner machine appends its mined templates through.
    /// Every quad routes by its subject (so a template's triples *and*
    /// its workload-dataset tag land on the same, write-local shard) and
    /// only the routed shards are locked, each under one group-commit
    /// bracket. Returns how many quads were new.
    pub fn insert_quads_batch(
        &self,
        quads: impl IntoIterator<Item = (Term, Term, Term, Option<Term>)>,
    ) -> usize {
        let mut routed: Vec<Vec<(Triple, Option<TermId>)>> = vec![Vec::new(); self.shards.len()];
        for (s, p, o, graph) in quads {
            let k = self.router.route(self.shards.len(), &s, &p, &o);
            let t = (
                self.interner.intern(&s),
                self.interner.intern(&p),
                self.interner.intern(&o),
            );
            routed[k].push((t, graph.map(|g| self.interner.intern(&g))));
        }
        let mut added = 0;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[k].write();
            shard.store.begin_batch();
            for (t, graph) in batch {
                let new = match graph {
                    Some(g) => shard.insert_in_global(g, t, &self.interner),
                    None => shard.insert_global(t, &self.interner),
                };
                if new {
                    added += 1;
                }
            }
            shard.store.end_batch();
        }
        added
    }

    /// Batched removal, locking only the routed shards. Returns how many
    /// triples were present.
    pub fn remove_terms_batch(
        &self,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> usize {
        let mut routed: Vec<Vec<Triple>> = vec![Vec::new(); self.shards.len()];
        for (s, p, o) in triples {
            let ids = (
                self.interner.get(&s),
                self.interner.get(&p),
                self.interner.get(&o),
            );
            let (Some(si), Some(pi), Some(oi)) = ids else {
                continue; // a never-interned term cannot be stored
            };
            let k = self.router.route(self.shards.len(), &s, &p, &o);
            routed[k].push((si, pi, oi));
        }
        let mut removed = 0;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = self.shards[k].write();
            shard.store.begin_batch();
            for t in batch {
                if shard.remove_global(t) {
                    removed += 1;
                }
            }
            shard.store.end_batch();
        }
        removed
    }

    /// Checkpoint every shard, fanned out across threads (each shard's
    /// snapshot write + log rotation is independent I/O). First error
    /// wins; other shards still finish their compaction.
    pub fn compact_all(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.write().store.compact()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard compaction must not panic"))
                .collect::<io::Result<Vec<()>>>()
        })?;
        Ok(())
    }

    /// Momentary all-shard read guards for the per-call trait reads.
    fn guards(&self) -> Vec<RwLockReadGuard<'_, ShardState>> {
        self.shards.iter().map(|s| s.read()).collect()
    }
}

/// Validate a `sharded.meta` file against the requested configuration.
fn validate_meta(
    meta: &str,
    shards: usize,
    router: &dyn ShardRouter,
    dir: &Path,
) -> io::Result<()> {
    let err = |detail: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("sharded store at {}: {detail}", dir.display()),
        )
    };
    let mut lines = meta.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(err("unrecognized meta header".to_string()));
    }
    let mut stored_shards = None;
    let mut stored_router = None;
    for line in lines {
        if let Some(n) = line.strip_prefix("shards ") {
            stored_shards = n.trim().parse::<usize>().ok();
        } else if let Some(r) = line.strip_prefix("router ") {
            stored_router = Some(r.trim().to_string());
        }
    }
    let stored = stored_shards.ok_or_else(|| err("meta file lacks a shard count".into()))?;
    if stored != shards {
        return Err(err(format!(
            "created with {stored} shard(s) but opened with {shards} — \
             placement would silently miss existing triples"
        )));
    }
    let stored_router = stored_router.ok_or_else(|| err("meta file lacks a router name".into()))?;
    if stored_router != router.name() {
        return Err(err(format!(
            "created with router '{stored_router}' but opened with '{}'",
            router.name()
        )));
    }
    Ok(())
}

impl TripleStore for ShardedStore {
    fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(&term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    fn insert_ids(&mut self, t: Triple) -> bool {
        let k = self.route_global(t);
        self.shards[k].write().insert_global(t, &self.interner)
    }

    fn remove_ids(&mut self, t: Triple) -> bool {
        let k = self.route_global(t);
        self.shards[k].write().remove_global(t)
    }

    fn clear(&mut self) {
        for shard in &self.shards {
            shard.write().store.clear();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().store.len()).sum()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        let guards = self.guards();
        fan_scan(guards.iter().map(|g| &**g), s, p, o)
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        let guards = self.guards();
        fan_count(guards.iter().map(|g| &**g), s, p, o)
    }

    fn graph_names(&self) -> Vec<Term> {
        let guards = self.guards();
        fan_graphs(guards.iter().map(|g| &**g), &self.interner)
            .into_iter()
            .map(|(name, _)| name)
            .collect()
    }

    fn graph_ids(&self) -> Vec<TermId> {
        let guards = self.guards();
        fan_graphs(guards.iter().map(|g| &**g), &self.interner)
            .into_iter()
            .map(|(_, id)| id)
            .collect()
    }

    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        let k = self.route_global(t);
        self.shards[k]
            .write()
            .insert_in_global(graph, t, &self.interner)
    }

    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        let k = self.route_global(t);
        self.shards[k].write().remove_in_global(graph, t)
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        let guards = self.guards();
        fan_scan_in(guards.iter().map(|g| &**g), graph, s, p, o)
    }

    fn compact(&mut self) -> io::Result<()> {
        self.compact_all()
    }

    fn begin_batch(&mut self) {
        for shard in &self.shards {
            shard.write().store.begin_batch();
        }
    }

    fn end_batch(&mut self) {
        for shard in &self.shards {
            shard.write().store.end_batch();
        }
    }
}

// -------------------------------------------------------------- sessions --

/// All-shard read transaction: holds every shard's read lock (taken in
/// index order) so [`view`](Self::view) exposes a stable, consistent
/// [`TripleStore`] over the whole store — the matching engine evaluates
/// a whole plan's probes under one. Concurrent read sessions coexist;
/// writers wait. The lock guards live here and the `TripleStore` lives
/// in the borrowed [`ShardedView`], which is `Send + Sync` (plain
/// references), so parallel probe workers can share one session.
pub struct ShardedReadSession<'a> {
    owner: &'a ShardedStore,
    guards: Vec<RwLockReadGuard<'a, ShardState>>,
}

impl fmt::Debug for ShardedReadSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedReadSession({} shards)", self.guards.len())
    }
}

impl ShardedReadSession<'_> {
    /// The session's `TripleStore` view.
    pub fn view(&self) -> ShardedView<'_> {
        ShardedView {
            owner: self.owner,
            states: self.guards.iter().map(|g| &**g).collect(),
        }
    }
}

/// Read-only `TripleStore` over a [`ShardedReadSession`]'s locked
/// shards. Mutating methods panic — callers only ever see it behind
/// `&dyn TripleStore`, so they are unreachable from the public API.
/// Interning is *not* a store mutation (ids must merely stay stable) and
/// works.
pub struct ShardedView<'a> {
    owner: &'a ShardedStore,
    states: Vec<&'a ShardState>,
}

impl fmt::Debug for ShardedView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedView({} shards)", self.states.len())
    }
}

impl TripleStore for ShardedView<'_> {
    fn intern(&mut self, term: Term) -> TermId {
        self.owner.interner.intern(&term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.owner.interner.get(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.owner.interner.resolve(id)
    }

    fn insert_ids(&mut self, _t: Triple) -> bool {
        panic!("ShardedView is read-only");
    }

    fn remove_ids(&mut self, _t: Triple) -> bool {
        panic!("ShardedView is read-only");
    }

    fn clear(&mut self) {
        panic!("ShardedView is read-only");
    }

    fn len(&self) -> usize {
        self.states.iter().map(|s| s.store.len()).sum()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        fan_scan(self.states.iter().copied(), s, p, o)
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        fan_count(self.states.iter().copied(), s, p, o)
    }

    fn graph_names(&self) -> Vec<Term> {
        fan_graphs(self.states.iter().copied(), &self.owner.interner)
            .into_iter()
            .map(|(name, _)| name)
            .collect()
    }

    fn graph_ids(&self) -> Vec<TermId> {
        fan_graphs(self.states.iter().copied(), &self.owner.interner)
            .into_iter()
            .map(|(_, id)| id)
            .collect()
    }

    fn insert_ids_in(&mut self, _graph: TermId, _t: Triple) -> bool {
        panic!("ShardedView is read-only");
    }

    fn remove_ids_in(&mut self, _graph: TermId, _t: Triple) -> bool {
        panic!("ShardedView is read-only");
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        fan_scan_in(self.states.iter().copied(), graph, s, p, o)
    }

    fn compact(&mut self) -> io::Result<()> {
        panic!("ShardedView is read-only");
    }
}

/// All-shard write transaction: exclusive access for `import`/`update`-
/// style rewrites that must appear atomic to readers. As with reads, the
/// guards live in the session and the `TripleStore` in the borrowed
/// [`ShardedViewMut`].
pub struct ShardedWriteSession<'a> {
    owner: &'a ShardedStore,
    guards: Vec<RwLockWriteGuard<'a, ShardState>>,
}

impl fmt::Debug for ShardedWriteSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedWriteSession({} shards)", self.guards.len())
    }
}

impl ShardedWriteSession<'_> {
    /// The session's exclusive `TripleStore` view.
    pub fn view_mut(&mut self) -> ShardedViewMut<'_> {
        ShardedViewMut {
            owner: self.owner,
            states: self.guards.iter_mut().map(|g| &mut **g).collect(),
        }
    }
}

/// Exclusive `TripleStore` over a [`ShardedWriteSession`]'s locked
/// shards; mutations route through the owner's [`ShardRouter`] exactly
/// like the concurrent batch path.
pub struct ShardedViewMut<'a> {
    owner: &'a ShardedStore,
    states: Vec<&'a mut ShardState>,
}

impl fmt::Debug for ShardedViewMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardedViewMut({} shards)", self.states.len())
    }
}

impl ShardedViewMut<'_> {
    fn route(&self, t: Triple) -> usize {
        self.owner.route_global(t)
    }
}

impl TripleStore for ShardedViewMut<'_> {
    fn intern(&mut self, term: Term) -> TermId {
        self.owner.interner.intern(&term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.owner.interner.get(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.owner.interner.resolve(id)
    }

    fn insert_ids(&mut self, t: Triple) -> bool {
        let k = self.route(t);
        self.states[k].insert_global(t, &self.owner.interner)
    }

    fn remove_ids(&mut self, t: Triple) -> bool {
        let k = self.route(t);
        self.states[k].remove_global(t)
    }

    fn clear(&mut self) {
        for state in &mut self.states {
            state.store.clear();
        }
    }

    fn len(&self) -> usize {
        self.states.iter().map(|s| s.store.len()).sum()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        fan_scan(self.states.iter().map(|s| &**s), s, p, o)
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        fan_count(self.states.iter().map(|s| &**s), s, p, o)
    }

    fn graph_names(&self) -> Vec<Term> {
        fan_graphs(self.states.iter().map(|s| &**s), &self.owner.interner)
            .into_iter()
            .map(|(name, _)| name)
            .collect()
    }

    fn graph_ids(&self) -> Vec<TermId> {
        fan_graphs(self.states.iter().map(|s| &**s), &self.owner.interner)
            .into_iter()
            .map(|(_, id)| id)
            .collect()
    }

    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        let k = self.route(t);
        self.states[k].insert_in_global(graph, t, &self.owner.interner)
    }

    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        let k = self.route(t);
        self.states[k].remove_in_global(graph, t)
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        fan_scan_in(self.states.iter().map(|s| &**s), graph, s, p, o)
    }

    fn compact(&mut self) -> io::Result<()> {
        for state in &mut self.states {
            state.store.compact()?;
        }
        Ok(())
    }

    fn begin_batch(&mut self) {
        for state in &mut self.states {
            state.store.begin_batch();
        }
    }

    fn end_batch(&mut self) {
        for state in &mut self.states {
            state.store.end_batch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::ScratchDir;
    use crate::store::ScanStore;
    use std::collections::BTreeSet;

    fn tpl_iri(id: u32) -> Term {
        Term::iri(format!("http://galo/kb/template/{id:016x}"))
    }

    fn pop_iri(id: u32, op: u32) -> Term {
        Term::iri(format!("http://galo/kb/template/{id:016x}/pop/{op}"))
    }

    fn prop(name: &str) -> Term {
        Term::iri(format!("http://galo/qep/property/{name}"))
    }

    /// ~6 template-shaped triples plus one workload tag.
    fn template_triples(id: u32) -> Vec<(Term, Term, Term)> {
        let tnode = tpl_iri(id);
        let mut out = vec![(tnode.clone(), prop("hasJoinCount"), Term::num(1.0))];
        for op in 0..2u32 {
            let me = pop_iri(id, op);
            out.push((me.clone(), prop("inTemplate"), tnode.clone()));
            out.push((me.clone(), prop("hasPopType"), Term::lit("NLJOIN")));
            out.push((me, prop("hasLowerCardinality"), Term::num(op as f64)));
        }
        out
    }

    #[test]
    fn template_router_colocates_whole_templates() {
        let store = ShardedStore::new(4);
        for id in 0..32u32 {
            store.insert_terms_batch(template_triples(id));
            store.insert_terms_batch_in(
                Term::iri("http://galo/kb/graph/workload/w"),
                [(tpl_iri(id), prop("hasProblemFingerprint"), Term::lit("fp"))],
            );
        }
        // Every template's triples and its tag live on exactly one shard.
        for id in 0..32u32 {
            let expected = {
                let s = tpl_iri(id);
                let p = prop("x");
                store.router.route(4, &s, &p, &p)
            };
            let tid = store.interner.get(&tpl_iri(id)).expect("interned");
            for (k, shard) in store.shards.iter().enumerate() {
                let state = shard.read();
                let here = state.count_global(None, None, Some(tid));
                if k == expected {
                    assert!(here > 0, "template {id} missing from its shard");
                } else {
                    assert_eq!(here, 0, "template {id} leaked to shard {k}");
                }
            }
        }
        // With 32 templates over 4 shards, no shard is empty.
        let stats = store.shard_stats();
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.triples > 0), "{stats:?}");
        assert_eq!(
            stats.iter().map(|s| s.triples).sum::<usize>(),
            store.shards.iter().map(|s| s.read().store.len()).sum()
        );
    }

    #[test]
    fn sharded_store_answers_all_patterns_like_scan_reference() {
        let mut sharded = ShardedStore::new(3);
        let mut reference = ScanStore::new();
        for id in 0..8u32 {
            for (s, p, o) in template_triples(id) {
                sharded.insert(s.clone(), p.clone(), o.clone());
                reference.insert(s, p, o);
            }
        }
        assert_eq!(sharded.len(), reference.len());
        let image = |st: &dyn TripleStore| -> BTreeSet<(Term, Term, Term)> {
            st.iter_terms()
                .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
                .collect()
        };
        assert_eq!(image(&sharded), image(&reference));
        // Bound-pattern checks through the trait.
        let p = sharded.term_id(&prop("inTemplate")).unwrap();
        assert_eq!(sharded.scan(None, Some(p), None).len(), 16);
        assert_eq!(sharded.count(None, Some(p), None), 16);
        let s = sharded.term_id(&pop_iri(3, 0)).unwrap();
        assert_eq!(sharded.scan(Some(s), None, None).len(), 3);
        let o = sharded.term_id(&tpl_iri(3)).unwrap();
        assert_eq!(sharded.count(Some(s), Some(p), Some(o)), 1);
        assert!(sharded.remove(&pop_iri(3, 0), &prop("inTemplate"), &tpl_iri(3)));
        assert_eq!(sharded.count(Some(s), Some(p), Some(o)), 0);
    }

    #[test]
    fn named_graphs_union_and_dedupe_across_shards() {
        let store = ShardedStore::new(4);
        let g = Term::iri("http://galo/kb/graph/workload/w");
        // Tags whose subjects route to different shards, same graph.
        for id in 0..16u32 {
            store.insert_terms_batch_in(
                g.clone(),
                [(tpl_iri(id), prop("hasProblemFingerprint"), Term::lit("fp"))],
            );
        }
        let session = store.read_session();
        let view = session.view();
        assert_eq!(view.graph_names(), vec![g.clone()]);
        assert_eq!(view.graph_ids().len(), 1);
        let gid = view.term_id(&g).unwrap();
        assert_eq!(view.scan_in(gid, None, None, None).len(), 16);
        // Default graph stays empty (tags are disjoint).
        assert_eq!(view.len(), 0);
    }

    #[test]
    fn write_session_routes_like_the_concurrent_path() {
        let store = ShardedStore::new(4);
        {
            let mut session = store.write_session();
            let mut view = session.view_mut();
            for id in 0..8u32 {
                for (s, p, o) in template_triples(id) {
                    view.insert(s, p, o);
                }
            }
        }
        // Same content via the batched path lands identically.
        let other = ShardedStore::new(4);
        for id in 0..8u32 {
            other.insert_terms_batch(template_triples(id));
        }
        assert_eq!(
            store.shard_stats().iter().map(|s| s.triples).sum::<usize>(),
            other.shard_stats().iter().map(|s| s.triples).sum::<usize>(),
        );
        for (a, b) in store.shard_stats().iter().zip(other.shard_stats().iter()) {
            assert_eq!(a, b, "placement must be deterministic");
        }
    }

    #[test]
    fn concurrent_writers_and_readers_lose_nothing() {
        // 4 writer threads inserting disjoint template sets through the
        // concurrent path while 2 readers scan; afterwards the store
        // must equal a sequentially-built ScanStore oracle.
        let store = ShardedStore::new(4);
        let writers = 4u32;
        let per_writer = 25u32;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let id = w * per_writer + i;
                        store.insert_terms_batch(template_triples(id));
                    }
                });
            }
            for _ in 0..2 {
                let store = &store;
                scope.spawn(move || {
                    let mut last = 0usize;
                    for _ in 0..50 {
                        let session = store.read_session();
                        let now = session.view().len();
                        assert!(now >= last, "triple count must grow monotonically");
                        last = now;
                        drop(session);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let mut oracle = ScanStore::new();
        for id in 0..writers * per_writer {
            for (s, p, o) in template_triples(id) {
                oracle.insert(s, p, o);
            }
        }
        assert_eq!(store.len(), oracle.len(), "no lost updates");
        let image = |st: &dyn TripleStore| -> BTreeSet<(Term, Term, Term)> {
            st.iter_terms()
                .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
                .collect()
        };
        let session = store.read_session();
        let view = session.view();
        assert_eq!(image(&view), image(&oracle));
    }

    #[test]
    fn durable_shards_persist_and_recover() {
        let dir = ScratchDir::new("shard-durable");
        let before;
        {
            let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
            for id in 0..16u32 {
                store.insert_terms_batch(template_triples(id));
                store.insert_terms_batch_in(
                    Term::iri("http://galo/kb/graph/workload/w"),
                    [(tpl_iri(id), prop("hasProblemFingerprint"), Term::lit("fp"))],
                );
            }
            store.compact_all().unwrap();
            // After the fold: stats (content *and* WAL counters — empty
            // logs, header-only bytes) must survive reopen exactly.
            before = store.shard_stats();
        }
        let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
        assert_eq!(store.shard_stats(), before, "per-shard recovery is exact");
        let session = store.read_session();
        let view = session.view();
        let p = view.term_id(&prop("inTemplate")).unwrap();
        assert_eq!(view.scan(None, Some(p), None).len(), 32);
        assert_eq!(view.graph_names().len(), 1);
    }

    #[test]
    fn torn_wal_on_one_shard_recovers_other_shards_fully() {
        let dir = ScratchDir::new("shard-torn");
        let stats_before;
        {
            let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
            for id in 0..16u32 {
                store.insert_terms_batch(template_triples(id));
            }
            stats_before = store.shard_stats();
        }
        // Tear the newest WAL of shard 2 mid-record.
        let shard_dir = dir.path().join("shard-0002");
        let mut wals: Vec<_> = fs::read_dir(&shard_dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .collect();
        wals.sort();
        let wal = wals.pop().expect("shard 2 has a wal");
        let len = fs::metadata(&wal).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(len - 9).unwrap();
        drop(f);
        let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
        let stats_after = store.shard_stats();
        for (b, a) in stats_before.iter().zip(stats_after.iter()) {
            if b.shard == 2 {
                assert!(
                    a.triples < b.triples,
                    "shard 2 must have dropped its torn tail"
                );
                assert!(a.triples > 0, "committed prefix survives");
            } else {
                assert_eq!(a, b, "untouched shards recover fully");
            }
        }
    }

    #[test]
    fn reopening_with_wrong_partitioning_is_a_loud_error() {
        let dir = ScratchDir::new("shard-meta");
        {
            let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
            store.insert_terms_batch(template_triples(1));
        }
        let err = ShardedStore::open_durable(dir.path(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("4 shard(s)"), "{err}");
        let err = ShardedStore::open_durable_with(
            dir.path(),
            4,
            DurableOptions::default(),
            Box::new(HashRouter),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("router"), "{err}");
        // The matching configuration still opens.
        assert!(ShardedStore::open_durable(dir.path(), 4).is_ok());
    }

    #[test]
    fn single_shard_behaves_like_a_plain_store() {
        let mut sharded = ShardedStore::new(1);
        let mut reference = IndexedStore::new();
        for id in 0..6u32 {
            for (s, p, o) in template_triples(id) {
                assert_eq!(
                    sharded.insert(s.clone(), p.clone(), o.clone()),
                    reference.insert(s, p, o)
                );
            }
        }
        assert_eq!(sharded.len(), reference.len());
        let p = sharded.term_id(&prop("hasPopType")).unwrap();
        let rp = reference.term_id(&prop("hasPopType")).unwrap();
        assert_eq!(
            sharded.scan(None, Some(p), None).len(),
            reference.scan(None, Some(rp), None).len()
        );
    }

    #[test]
    fn clear_empties_every_shard_but_keeps_ids_valid() {
        let mut store = ShardedStore::new(3);
        for id in 0..6u32 {
            for (s, p, o) in template_triples(id) {
                store.insert(s, p, o);
            }
        }
        let tid = store.term_id(&tpl_iri(1)).unwrap();
        store.clear();
        assert_eq!(store.len(), 0);
        assert!(store.graph_names().is_empty());
        assert_eq!(store.term_id(&tpl_iri(1)), Some(tid), "ids survive clear");
        // The store is reusable after a clear.
        store.insert_terms_batch(template_triples(1));
        assert_eq!(store.len(), template_triples(1).len());
    }

    #[test]
    fn shared_interner_is_stable_under_concurrent_interning() {
        let store = ShardedStore::new(2);
        let ids: Vec<Vec<TermId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = &store;
                    scope.spawn(move || {
                        (0..200u32)
                            .map(|i| store.interner.intern(&tpl_iri(i % 50)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread saw the same id for the same term.
        for thread_ids in &ids[1..] {
            assert_eq!(thread_ids, &ids[0]);
        }
        // And resolution round-trips.
        for (i, &id) in ids[0].iter().enumerate() {
            assert_eq!(store.interner.resolve(id), &tpl_iri(i as u32 % 50));
        }
    }

    #[test]
    fn per_shard_pressure_and_single_shard_compaction() {
        let dir = ScratchDir::new("shard-pressure");
        let store = ShardedStore::open_durable(dir.path(), 4).unwrap();
        for id in 0..16u32 {
            store.insert_terms_batch(template_triples(id));
        }
        let before = store.storage_pressures();
        assert_eq!(before.len(), 4);
        assert_eq!(
            before.iter().map(|p| p.wal_records).sum::<u64>(),
            store.len() as u64,
            "every journaled record shows up in exactly one shard's pressure"
        );
        // shard_stats carries the same counters.
        for (stat, pressure) in store.shard_stats().iter().zip(&before) {
            assert_eq!(stat.wal_records, pressure.wal_records);
            assert_eq!(stat.wal_bytes, pressure.wal_bytes);
            assert_eq!(stat.compactions_failed, pressure.compactions_failed);
        }
        // Fold only the hottest shard; the other logs must be untouched.
        let hot = (0..4)
            .max_by_key(|&k| before[k].wal_records)
            .expect("4 shards");
        assert!(before[hot].wal_records > 0);
        store.compact_shard(hot).unwrap();
        let after = store.storage_pressures();
        assert_eq!(after[hot].wal_records, 0);
        for k in 0..4 {
            if k != hot {
                assert_eq!(after[k], before[k], "shard {k} must be untouched");
            }
        }
        assert!(store.compact_shard(99).is_err(), "out of range is loud");
        // In-memory shards report zero pressure (nothing to fold).
        let mem = ShardedStore::new(2);
        assert!(mem
            .storage_pressures()
            .iter()
            .all(|p| *p == StoragePressure::default()));
    }
}
