//! Durable triple storage: a write-ahead log plus binary snapshots.
//!
//! The paper's knowledge base lives in a Fuseki server backed by "a
//! robust, transactional, and persistent storage layer" (§3.2) — learned
//! guidelines accumulate across workloads and off-peak learning runs.
//! [`DurableStore`] gives this reproduction the same property without any
//! external dependency: an in-memory [`IndexedStore`] serves every read,
//! while each mutation is journaled to an append-only N-Quads
//! write-ahead log *before* it is applied, and [`compact`] periodically
//! folds the log into a binary snapshot (interner table + SPO triples +
//! named-graph tags).
//!
//! # On-disk layout
//!
//! A store directory holds numbered generations:
//!
//! ```text
//! kb.galo/
//!   snapshot-0000000003.galo   binary image of the store at generation 3
//!   wal-0000000003.log         mutations journaled since that snapshot
//!   wal-0000000002.log         previous generation (kept for fallback)
//! ```
//!
//! * **Log records** are single lines: `+ <s> <p> <o> .` (default-graph
//!   insert), `- <s> <p> <o> .` (remove), the same with a fourth graph
//!   term for named-graph tagging (N-Quads), and `* clear`. A version-2
//!   log (first line `# galo-wal v2`) additionally suffixes every record
//!   with ` #<fnv64>` — a per-record checksum over the record body, so
//!   replay rejects in-place corruption, not just truncation; logs
//!   without the header replay under the original v1 rules. A record is
//!   *committed* once its terminating newline reaches the file; replay
//!   stops at the first torn, unparsable or checksum-failing trailing
//!   record and [`DurableStore::open`] truncates the log back to the
//!   committed prefix — a crash mid-write loses at most the
//!   un-terminated record, never an acknowledged one.
//! * **Group commit** — each record is normally flushed to the OS as it
//!   is journaled; inside a [`TripleStore::begin_batch`] /
//!   [`TripleStore::end_batch`] bracket (one `FusekiLite` write
//!   transaction) records are buffered and flushed once at batch end, so
//!   a template insert pays one flush instead of ~19.
//! * **Snapshots** are written to a temporary file, fsynced, then
//!   atomically renamed, and carry an FNV-1a checksum over their whole
//!   body; a snapshot that fails validation is quarantined (renamed
//!   `*.corrupt`) and recovery falls back to the previous generation,
//!   replaying every later log. If the surviving logs cannot cover the
//!   gap back to a valid snapshot, [`DurableStore::open`] refuses with
//!   an error rather than silently opening partial history.
//! * **Compaction** ([`TripleStore::compact`]) opens the next
//!   generation's log, writes the next-generation snapshot, rotates,
//!   and prunes generations below the newest *remaining older*
//!   snapshot — so one complete fallback chain (a valid snapshot plus
//!   every later log) always stays on disk and a corrupt newest
//!   snapshot cannot strand the store.
//!
//! Interned [`TermId`]s are stable for the lifetime of one open store,
//! as the [`TripleStore`] contract requires, but **not across reopens**:
//! terms interned without ever appearing in a triple are not journaled,
//! so a recovered store re-interns from its triples alone.
//!
//! [`compact`]: TripleStore::compact

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::fnv::fnv1a;
use crate::ntriples::parse_ntriples;
use crate::store::{IndexedStore, StoragePressure, Triple, TripleStore};
use crate::term::{Term, TermId};

const SNAPSHOT_MAGIC: &[u8; 8] = b"GALOSNAP";
const SNAPSHOT_VERSION: u32 = 1;
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".galo";
const WAL_PREFIX: &str = "wal-";
const WAL_SUFFIX: &str = ".log";

/// First line of a version-2 write-ahead log. A v2 record line carries a
/// trailing ` #<fnv64 hex>` checksum over the record body, so replay
/// detects in-place corruption (a flipped byte in a literal still parses
/// under v1 rules — v2 rejects it). Logs without the header are v1 and
/// replay with the original newline-plus-parse validation, so stores
/// written by older builds keep recovering.
const WAL_V2_HEADER: &str = "# galo-wal v2";

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone, Default)]
pub struct DurableOptions {
    /// `fsync` the log after every commit — every record, or every batch
    /// under group commit. Off by default: each commit is still flushed
    /// to the OS (surviving process death, the failure mode the tests
    /// simulate); fsync additionally survives power loss at a heavy
    /// per-write cost.
    pub fsync_each_record: bool,
    /// Automatically [`compact`](TripleStore::compact) once this many
    /// records accumulate in the current log. `None` (the default) leaves
    /// compaction to the caller.
    pub auto_compact_records: Option<u64>,
}

/// A persistent [`TripleStore`]: WAL + snapshot around an in-memory
/// [`IndexedStore`].
///
/// Reads delegate to the inner indexed store, so lookup performance is
/// identical to the default backend; every mutation pays one journaled
/// log line. I/O failure while journaling is fail-stop (a panic): a store
/// that cannot journal must not acknowledge writes it would lose.
#[derive(Debug)]
pub struct DurableStore {
    inner: IndexedStore,
    dir: PathBuf,
    wal: BufWriter<File>,
    wal_bytes: u64,
    wal_records: u64,
    generation: u64,
    options: DurableOptions,
    /// The active log is version 2 (checksummed records). Appending to a
    /// recovered v1 log keeps writing v1 records — a log file never mixes
    /// versions; rotation upgrades.
    wal_crc: bool,
    /// Inside a [`TripleStore::begin_batch`] group commit: journal writes
    /// are buffered and flushed once at `end_batch`.
    in_batch: bool,
    /// Records were journaled since the batch began (so `end_batch` knows
    /// whether a flush is owed).
    batch_dirty: bool,
    /// The auto-compaction threshold tripped inside an open batch; the
    /// compaction is owed at `end_batch` (rotating the log under a
    /// half-journaled batch would make an uncommitted prefix durable).
    compact_deferred: bool,
    /// Failed compaction attempts since open (auto or explicit). The log
    /// still holds every record after a failure, so writes keep flowing —
    /// but callers (and the background [`crate::policy::Compactor`]) can
    /// observe the count and back off instead of hot-looping a broken disk.
    compactions_failed: u64,
    /// Error text of the most recent failed compaction; cleared by the
    /// next successful one.
    last_compaction_error: Option<String>,
}

/// One replayable log record — also the unit the replication wire
/// protocol ships ([`crate::wire`]): a mutation frame's payload is a run
/// of these in the exact v2 log-line format, so a replica replays a frame
/// the same way crash recovery replays a WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Assert one statement (named-graph tag when the fourth term is set).
    Insert(Term, Term, Term, Option<Term>),
    /// Retract one statement.
    Remove(Term, Term, Term, Option<Term>),
    /// Drop the whole image.
    Clear,
}

impl DurableStore {
    /// Open (or create) a durable store rooted at `dir` with default
    /// options: load the newest valid snapshot, replay every later log in
    /// generation order, and truncate the torn tail of the newest log.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<DurableStore> {
        Self::open_with(dir, DurableOptions::default())
    }

    /// [`open`](Self::open) with explicit [`DurableOptions`].
    pub fn open_with(dir: impl AsRef<Path>, options: DurableOptions) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut snapshots = numbered_files(&dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX)?;
        snapshots.sort_by_key(|&(gen, _)| std::cmp::Reverse(gen));
        let mut inner = IndexedStore::new();
        let mut base = None;
        for (gen, path) in &snapshots {
            match load_snapshot(path) {
                Ok(store) => {
                    inner = store;
                    base = Some(*gen);
                    break;
                }
                Err(_) => {
                    // Corrupt snapshot: quarantine it (so compaction's
                    // retention never counts it as a usable fallback) and
                    // fall back a generation.
                    let _ = fs::rename(path, path.with_extension("galo.corrupt"));
                }
            }
        }
        let base_gen = base.unwrap_or(0);
        let mut wals = numbered_files(&dir, WAL_PREFIX, WAL_SUFFIX)?;
        wals.sort_by_key(|&(gen, _)| gen);
        // Refuse to recover across a broken chain: the logs at or above
        // the base snapshot must cover every generation from the base on
        // up, or replay would silently skip acknowledged history (e.g.
        // every snapshot corrupt but the early logs already pruned).
        let run: Vec<u64> = wals
            .iter()
            .map(|&(gen, _)| gen)
            .filter(|&gen| gen >= base_gen)
            .collect();
        let contiguous = run.iter().zip(run.iter().skip(1)).all(|(a, b)| b - a == 1);
        let anchored = run.first().is_none_or(|&first| first == base_gen);
        if !(contiguous && anchored) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "durable store at {} has no recoverable generation chain \
                     (no valid snapshot covers the surviving logs {run:?})",
                    dir.display()
                ),
            ));
        }
        let mut generation = base_gen;
        let mut wal_bytes = 0u64;
        let mut wal_records = 0u64;
        let mut wal_crc = false;
        for (gen, path) in &wals {
            if *gen < base_gen {
                continue;
            }
            let newest = *gen == wals.last().expect("non-empty").0;
            let (committed_bytes, records, v2) = replay_wal(&mut inner, path)?;
            let on_disk = fs::metadata(path)?.len();
            if newest {
                // Drop the torn tail so the append point is a committed
                // record boundary.
                if on_disk > committed_bytes {
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(committed_bytes)?;
                    f.sync_all()?;
                }
                wal_bytes = committed_bytes;
                wal_records = records;
                wal_crc = v2;
            } else if on_disk > committed_bytes {
                // Only the *newest* log may legitimately end in a torn
                // record (a crash mid-append); an older log was rotated
                // after a flush, so a bad record mid-chain is in-place
                // corruption. Stopping there and still replaying later
                // generations would silently drop a slice of acknowledged
                // history — refuse instead.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "durable store at {}: corrupt record in non-newest log {} \
                         ({} of {} bytes replayable) — recovery would skip \
                         acknowledged history",
                        dir.display(),
                        path.display(),
                        committed_bytes,
                        on_disk,
                    ),
                ));
            }
            generation = generation.max(*gen);
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(wal_file(&dir, generation))?;
        let mut store = DurableStore {
            inner,
            dir,
            wal: BufWriter::new(wal),
            wal_bytes,
            wal_records,
            generation,
            options,
            wal_crc,
            in_batch: false,
            batch_dirty: false,
            compact_deferred: false,
            compactions_failed: 0,
            last_compaction_error: None,
        };
        if store.wal_bytes == 0 {
            // A fresh (or fully-truncated) log starts at version 2; a
            // recovered v1 log with committed records keeps appending v1
            // records so one file never mixes formats.
            store.init_wal_header()?;
        }
        Ok(store)
    }

    /// Start a fresh log at version 2: write and flush the header line.
    fn init_wal_header(&mut self) -> std::io::Result<()> {
        let line = format!("{WAL_V2_HEADER}\n");
        self.wal.write_all(line.as_bytes())?;
        self.wal.flush()?;
        self.wal_bytes = line.len() as u64;
        self.wal_crc = true;
        Ok(())
    }

    /// The store's directory on disk.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot/log generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Committed bytes in the current write-ahead log.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Committed records in the current write-ahead log.
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Failed compaction attempts since open (auto-compaction and explicit
    /// [`TripleStore::compact`] calls both count).
    pub fn compactions_failed(&self) -> u64 {
        self.compactions_failed
    }

    /// Error text of the most recent failed compaction, `None` after a
    /// success (or when compaction has never failed).
    pub fn last_compaction_error(&self) -> Option<&str> {
        self.last_compaction_error.as_deref()
    }

    /// Path of the current write-ahead log (tests and the crash-recovery
    /// example truncate it to simulate a torn write).
    pub fn wal_path(&self) -> PathBuf {
        wal_file(&self.dir, self.generation)
    }

    /// Journal one record, honoring the configured sync policy — unless a
    /// group-commit batch is open, in which case the flush is deferred to
    /// [`TripleStore::end_batch`]. Fail-stop on I/O error: the mutation
    /// has not been applied yet, so panicking here never acknowledges a
    /// write the log lost.
    fn journal(&mut self, record: &Record) {
        let line = if self.wal_crc {
            render_record_v2(record)
        } else {
            render_record(record)
        };
        let res = self.wal.write_all(line.as_bytes()).and_then(|()| {
            if self.in_batch {
                self.batch_dirty = true;
                Ok(())
            } else {
                self.flush_wal()
            }
        });
        if let Err(e) = res {
            panic!(
                "durable store failed to journal to {:?}: {e}",
                self.wal_path()
            );
        }
        self.wal_bytes += line.len() as u64;
        self.wal_records += 1;
    }

    /// Flush buffered log records to the OS (plus fsync when configured).
    fn flush_wal(&mut self) -> std::io::Result<()> {
        self.wal.flush()?;
        if self.options.fsync_each_record {
            self.wal.get_ref().sync_data()?;
        }
        Ok(())
    }

    fn maybe_auto_compact(&mut self) {
        let Some(threshold) = self.options.auto_compact_records else {
            return;
        };
        if self.wal_records < threshold {
            return;
        }
        // Never rotate mid-batch: the snapshot would durably commit the
        // batch's journaled-so-far prefix while the rest is still buffered,
        // so a crash before `end_batch` resurrects half a group commit.
        // The compaction is owed at `end_batch` instead.
        if self.in_batch {
            self.compact_deferred = true;
            return;
        }
        // Best-effort: a failed compaction loses nothing (the log still
        // holds every record), so keep serving writes on the old log. The
        // failure is counted (`compactions_failed`) inside `compact`.
        if let Err(e) = self.compact() {
            eprintln!("durable store auto-compaction failed (will retry): {e}");
        }
    }

    fn term(&self, id: TermId) -> Term {
        self.inner.resolve(id).clone()
    }
}

/// `<dir>/wal-<gen>.log`.
fn wal_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("{WAL_PREFIX}{generation:010}{WAL_SUFFIX}"))
}

/// `<dir>/snapshot-<gen>.galo`.
fn snapshot_file(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!(
        "{SNAPSHOT_PREFIX}{generation:010}{SNAPSHOT_SUFFIX}"
    ))
}

/// Enumerate `<prefix><gen><suffix>` files in `dir`.
fn numbered_files(dir: &Path, prefix: &str, suffix: &str) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        else {
            continue;
        };
        let Ok(gen) = stem.parse::<u64>() else {
            continue;
        };
        out.push((gen, entry.path()));
    }
    Ok(out)
}

/// Serialize a record body (no terminating newline, no checksum).
fn render_body(record: &Record) -> String {
    match record {
        Record::Insert(s, p, o, None) => format!("+ {s} {p} {o} ."),
        Record::Insert(s, p, o, Some(g)) => format!("+ {s} {p} {o} {g} ."),
        Record::Remove(s, p, o, None) => format!("- {s} {p} {o} ."),
        Record::Remove(s, p, o, Some(g)) => format!("- {s} {p} {o} {g} ."),
        Record::Clear => "* clear".to_string(),
    }
}

/// Serialize a record as one committed v1 log line.
fn render_record(record: &Record) -> String {
    format!("{}\n", render_body(record))
}

/// Serialize a record as one committed v2 log line: body plus a trailing
/// ` #<fnv64>` checksum over the body bytes.
pub(crate) fn render_record_v2(record: &Record) -> String {
    let body = render_body(record);
    let sum = fnv1a(body.as_bytes());
    format!("{body} #{sum:016x}\n")
}

/// Parse one committed v2 log line: split off the trailing checksum,
/// verify it over the body, then parse the body as a v1 record. `None`
/// marks a torn, malformed, or corrupted record.
pub(crate) fn parse_record_v2(line: &str) -> Option<Record> {
    let (body, sum) = line.rsplit_once(" #")?;
    if sum.len() != 16 {
        return None;
    }
    let stored = u64::from_str_radix(sum, 16).ok()?;
    if fnv1a(body.as_bytes()) != stored {
        return None;
    }
    parse_record(body)
}

/// Parse one committed log line; `None` marks an invalid record (replay
/// treats it, and everything after it, as the torn tail).
fn parse_record(line: &str) -> Option<Record> {
    if line == "* clear" {
        return Some(Record::Clear);
    }
    let (op, rest) = line.split_at_checked(2)?;
    let statements = parse_ntriples(rest).ok()?;
    let [(s, p, o, graph)] = statements.as_slice() else {
        return None;
    };
    match op {
        "+ " => Some(Record::Insert(
            s.clone(),
            p.clone(),
            o.clone(),
            graph.clone(),
        )),
        "- " => Some(Record::Remove(
            s.clone(),
            p.clone(),
            o.clone(),
            graph.clone(),
        )),
        _ => None,
    }
}

/// Apply one record to the raw inner store (no journaling).
fn apply_record(inner: &mut IndexedStore, record: Record) {
    match record {
        Record::Insert(s, p, o, None) => {
            inner.insert(s, p, o);
        }
        Record::Insert(s, p, o, Some(g)) => {
            inner.insert_in(g, s, p, o);
        }
        Record::Remove(s, p, o, None) => {
            inner.remove(&s, &p, &o);
        }
        Record::Remove(s, p, o, Some(g)) => {
            let ids = (inner.term_id(&s), inner.term_id(&p), inner.term_id(&o));
            if let (Some(g), (Some(s), Some(p), Some(o))) = (inner.term_id(&g), ids) {
                inner.remove_ids_in(g, (s, p, o));
            }
        }
        Record::Clear => inner.clear(),
    }
}

/// Replay a log into `inner`. Returns `(committed_bytes, records, v2)` —
/// the byte length of the valid record prefix, how many records it holds,
/// and whether the log carries the version-2 header. A record only counts
/// as committed when its line is newline-terminated *and* parses (*and*,
/// in a v2 log, its checksum verifies); the first violation ends the
/// replay. The v2 header line counts toward the committed bytes but not
/// toward the record count.
fn replay_wal(inner: &mut IndexedStore, path: &Path) -> std::io::Result<(u64, u64, bool)> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 0, false)),
        Err(e) => return Err(e),
    };
    let header = format!("{WAL_V2_HEADER}\n");
    let v2 = bytes.starts_with(header.as_bytes());
    let mut start = if v2 { header.len() } else { 0 };
    let mut committed = start as u64;
    let mut records = 0u64;
    while let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') {
        let end = start + nl;
        let Ok(line) = std::str::from_utf8(&bytes[start..end]) else {
            break;
        };
        let record = if v2 {
            parse_record_v2(line)
        } else {
            parse_record(line)
        };
        let Some(record) = record else {
            break;
        };
        apply_record(inner, record);
        start = end + 1;
        committed = start as u64;
        records += 1;
    }
    Ok((committed, records, v2))
}

// ------------------------------------------------------------ snapshot --

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_term(buf: &mut Vec<u8>, term: &Term) {
    let (tag, text): (u8, &str) = match term {
        Term::Iri(s) => (0, s),
        Term::Literal(l) => (1, &l.lexical),
        Term::Blank(b) => (2, b),
    };
    buf.push(tag);
    put_u32(buf, text.len() as u32);
    buf.extend_from_slice(text.as_bytes());
}

/// Serialize any store's current image in the [`DurableStore`] snapshot
/// format (magic, version, interner table, default-graph triples,
/// named-graph tags, trailing FNV-64 checksum). The image is first copied
/// into a fresh [`IndexedStore`] so term ids are dense regardless of the
/// source backend's interner state — the bytes are exactly what
/// [`TripleStore::compact`] would write for that image, and
/// [`store_from_snapshot`] round-trips them. This is the replication
/// subsystem's cold-start transfer payload.
pub fn snapshot_bytes(store: &dyn TripleStore) -> Vec<u8> {
    let mut image = IndexedStore::new();
    let copy = |image: &mut IndexedStore, s: TermId, p: TermId, o: TermId| {
        (
            image.intern(store.resolve(s).clone()),
            image.intern(store.resolve(p).clone()),
            image.intern(store.resolve(o).clone()),
        )
    };
    for (s, p, o) in store.scan(None, None, None) {
        let t = copy(&mut image, s, p, o);
        image.insert_ids(t);
    }
    for graph in store.graph_names() {
        let gid = image.intern(graph.clone());
        let g = store.term_id(&graph).expect("graph name is interned");
        for (s, p, o) in store.scan_in(g, None, None, None) {
            let t = copy(&mut image, s, p, o);
            image.insert_ids_in(gid, t);
        }
    }
    encode_snapshot(&image)
}

/// Serialize the whole store image: interner table, default-graph SPO
/// triples, named-graph tags, trailing checksum.
fn encode_snapshot(store: &IndexedStore) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut buf, SNAPSHOT_VERSION);
    let terms = store.interner_len();
    put_u64(&mut buf, terms as u64);
    for i in 0..terms {
        put_term(&mut buf, store.resolve(TermId(i as u32)));
    }
    let triples = store.scan(None, None, None);
    put_u64(&mut buf, triples.len() as u64);
    for (s, p, o) in triples {
        put_u32(&mut buf, s.0);
        put_u32(&mut buf, p.0);
        put_u32(&mut buf, o.0);
    }
    let graphs = store.graph_names();
    put_u64(&mut buf, graphs.len() as u64);
    for graph in graphs {
        let g = store.term_id(&graph).expect("graph name is interned");
        let tagged = store.scan_in(g, None, None, None);
        put_u32(&mut buf, g.0);
        put_u64(&mut buf, tagged.len() as u64);
        for (s, p, o) in tagged {
            put_u32(&mut buf, s.0);
            put_u32(&mut buf, p.0);
            put_u32(&mut buf, o.0);
        }
    }
    let checksum = fnv1a(&buf);
    put_u64(&mut buf, checksum);
    buf
}

/// A bounds-checked reader over a snapshot body.
struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(snapshot_err("truncated snapshot"));
        };
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn term(&mut self) -> std::io::Result<Term> {
        let tag = self.take(1)?[0];
        let len = self.u32()? as usize;
        let text = std::str::from_utf8(self.take(len)?)
            .map_err(|_| snapshot_err("non-UTF-8 term"))?
            .to_string();
        match tag {
            0 => Ok(Term::iri(text)),
            1 => Ok(Term::lit(text)),
            2 => Ok(Term::Blank(text)),
            _ => Err(snapshot_err("unknown term tag")),
        }
    }
}

fn snapshot_err(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Load and validate one snapshot file into a fresh indexed store.
fn load_snapshot(path: &Path) -> std::io::Result<IndexedStore> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    store_from_snapshot(&bytes)
}

/// Decode and validate snapshot bytes ([`snapshot_bytes`] or a
/// `snapshot-*.galo` file's contents) into a fresh indexed store. Any
/// truncation or corruption — bad magic, failed checksum, dangling term
/// reference, trailing garbage — is an `InvalidData` error, never a
/// partial image: a replica that receives a torn snapshot transfer
/// rejects it wholesale and re-pulls.
pub fn store_from_snapshot(bytes: &[u8]) -> std::io::Result<IndexedStore> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 || !bytes.starts_with(SNAPSHOT_MAGIC) {
        return Err(snapshot_err("bad magic"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(snapshot_err("checksum mismatch"));
    }
    let mut r = SnapReader {
        bytes: body,
        pos: SNAPSHOT_MAGIC.len(),
    };
    if r.u32()? != SNAPSHOT_VERSION {
        return Err(snapshot_err("unsupported snapshot version"));
    }
    let mut store = IndexedStore::new();
    let terms = r.u64()?;
    for i in 0..terms {
        let term = r.term()?;
        // Interning in file order reproduces the snapshotted ids.
        let id = store.intern(term);
        if id.0 as u64 != i {
            return Err(snapshot_err("duplicate term in snapshot"));
        }
    }
    let check_id = |id: u32| -> std::io::Result<TermId> {
        if (id as u64) < terms {
            Ok(TermId(id))
        } else {
            Err(snapshot_err("triple references unknown term"))
        }
    };
    let triples = r.u64()?;
    for _ in 0..triples {
        let t = (
            check_id(r.u32()?)?,
            check_id(r.u32()?)?,
            check_id(r.u32()?)?,
        );
        store.insert_ids(t);
    }
    let graphs = r.u64()?;
    for _ in 0..graphs {
        let g = check_id(r.u32()?)?;
        let tagged = r.u64()?;
        for _ in 0..tagged {
            let t = (
                check_id(r.u32()?)?,
                check_id(r.u32()?)?,
                check_id(r.u32()?)?,
            );
            store.insert_ids_in(g, t);
        }
    }
    if r.pos != body.len() {
        return Err(snapshot_err("trailing bytes after snapshot body"));
    }
    Ok(store)
}

impl TripleStore for DurableStore {
    fn intern(&mut self, term: Term) -> TermId {
        // Interning alone is not journaled: ids are stable only for the
        // lifetime of one open store (see the module docs).
        self.inner.intern(term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.inner.term_id(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.inner.resolve(id)
    }

    fn insert_ids(&mut self, t: Triple) -> bool {
        if self.inner.count(Some(t.0), Some(t.1), Some(t.2)) == 1 {
            return false; // no state change: nothing to journal
        }
        let record = Record::Insert(self.term(t.0), self.term(t.1), self.term(t.2), None);
        self.journal(&record);
        let added = self.inner.insert_ids(t);
        self.maybe_auto_compact();
        added
    }

    fn remove_ids(&mut self, t: Triple) -> bool {
        if self.inner.count(Some(t.0), Some(t.1), Some(t.2)) == 0 {
            return false;
        }
        let record = Record::Remove(self.term(t.0), self.term(t.1), self.term(t.2), None);
        self.journal(&record);
        let removed = self.inner.remove_ids(t);
        self.maybe_auto_compact();
        removed
    }

    fn clear(&mut self) {
        if self.inner.is_empty() && self.inner.graph_names().is_empty() {
            return;
        }
        self.journal(&Record::Clear);
        self.inner.clear();
        self.maybe_auto_compact();
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        self.inner.scan(s, p, o)
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.inner.count(s, p, o)
    }

    fn graph_names(&self) -> Vec<Term> {
        self.inner.graph_names()
    }

    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        if !self
            .inner
            .scan_in(graph, Some(t.0), Some(t.1), Some(t.2))
            .is_empty()
        {
            return false;
        }
        let record = Record::Insert(
            self.term(t.0),
            self.term(t.1),
            self.term(t.2),
            Some(self.term(graph)),
        );
        self.journal(&record);
        let added = self.inner.insert_ids_in(graph, t);
        self.maybe_auto_compact();
        added
    }

    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        if self
            .inner
            .scan_in(graph, Some(t.0), Some(t.1), Some(t.2))
            .is_empty()
        {
            return false;
        }
        let record = Record::Remove(
            self.term(t.0),
            self.term(t.1),
            self.term(t.2),
            Some(self.term(graph)),
        );
        self.journal(&record);
        let removed = self.inner.remove_ids_in(graph, t);
        self.maybe_auto_compact();
        removed
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        self.inner.scan_in(graph, s, p, o)
    }

    fn graph_ids(&self) -> Vec<TermId> {
        self.inner.graph_ids()
    }

    /// Open a group-commit batch: subsequent records are buffered and
    /// flushed once at [`end_batch`](TripleStore::end_batch). Not
    /// reentrant — one bracket per write transaction.
    fn begin_batch(&mut self) {
        self.in_batch = true;
    }

    /// Close the group-commit batch, flushing every record journaled
    /// inside it in one go. Fail-stop on flush error: the batch's
    /// mutations were already applied, so a store that cannot commit
    /// them must not keep serving.
    fn end_batch(&mut self) {
        self.in_batch = false;
        let deferred = std::mem::take(&mut self.compact_deferred);
        if self.batch_dirty {
            self.batch_dirty = false;
            if let Err(e) = self.flush_wal() {
                panic!(
                    "durable store failed to commit batch to {:?}: {e}",
                    self.wal_path()
                );
            }
        }
        if deferred {
            // The threshold tripped mid-batch; now that the batch is
            // committed the rotation is safe. Re-checks the threshold, so
            // an explicit compact inside the bracket leaves nothing owed.
            self.maybe_auto_compact();
        }
    }

    fn storage_pressure(&self) -> Option<StoragePressure> {
        Some(StoragePressure {
            wal_records: self.wal_records,
            wal_bytes: self.wal_bytes,
            compactions_failed: self.compactions_failed,
            last_compaction_error: self.last_compaction_error.clone(),
        })
    }

    /// Fold the log into a snapshot: open a fresh `wal-<g+1>`, write
    /// `snapshot-<g+1>` (temp file, fsync, atomic rename), rotate, and
    /// prune generations older than the newest *remaining older*
    /// snapshot, so a complete fallback chain (snapshot + every later
    /// log) is always retained.
    ///
    /// The new log is created *before* the snapshot is renamed into
    /// place: if any step fails, `self` still journals to the old
    /// generation's log, and no snapshot exists whose generation would
    /// make recovery skip that log.
    ///
    /// Failures are counted (`compactions_failed`) and the error text kept
    /// (`last_compaction_error`) so policy threads can observe and back
    /// off; a success clears the stored error.
    fn compact(&mut self) -> std::io::Result<()> {
        match self.compact_inner() {
            Ok(()) => {
                self.last_compaction_error = None;
                Ok(())
            }
            Err(e) => {
                self.compactions_failed += 1;
                self.last_compaction_error = Some(e.to_string());
                Err(e)
            }
        }
    }
}

impl DurableStore {
    fn compact_inner(&mut self) -> std::io::Result<()> {
        // A group-commit batch may be open: push its buffered records to
        // the OS before rotating, or the old log could fall short of the
        // snapshot the fallback chain pairs it with.
        self.flush_wal()?;
        let next = self.generation + 1;
        let bytes = encode_snapshot(&self.inner);
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(wal_file(&self.dir, next))?;
        let mut new_wal = BufWriter::new(wal);
        let header = format!("{WAL_V2_HEADER}\n");
        new_wal.write_all(header.as_bytes())?;
        new_wal.flush()?;
        let tmp = self.dir.join(format!(".snapshot-{next:010}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, snapshot_file(&self.dir, next))?;
        self.wal = new_wal;
        self.wal_bytes = header.len() as u64;
        self.wal_records = 0;
        self.wal_crc = true;
        self.generation = next;
        // The fallback floor: the newest snapshot older than `next` that
        // is still on disk (corrupt ones were quarantined at open).
        // Everything at or above it — that snapshot plus every later log
        // — is a complete recovery chain; everything below is pruned.
        let fallback = numbered_files(&self.dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX)?
            .into_iter()
            .filter(|&(gen, _)| gen < next)
            .map(|(gen, _)| gen)
            .max()
            .unwrap_or(0);
        for (gen, path) in numbered_files(&self.dir, SNAPSHOT_PREFIX, SNAPSHOT_SUFFIX)?
            .into_iter()
            .chain(numbered_files(&self.dir, WAL_PREFIX, WAL_SUFFIX)?)
        {
            if gen < fallback {
                let _ = fs::remove_file(path);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------- scratch dirs --

/// A unique scratch directory removed on drop — the workspace has no
/// `tempfile` dependency, so durable-store tests, benches and examples
/// share this helper.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `<tmp>/galo-<label>-<pid>-<nonce>`.
    pub fn new(label: &str) -> ScratchDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "galo-{label}-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&path).expect("scratch dir is creatable");
        ScratchDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(n: u32) -> Term {
        Term::iri(format!("http://galo/qep/pop/{n}"))
    }

    fn p(name: &str) -> Term {
        Term::iri(format!("http://galo/qep/property/{name}"))
    }

    #[test]
    fn writes_survive_reopen() {
        let dir = ScratchDir::new("persist-reopen");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("hasPopType"), Term::lit("NLJOIN"));
            st.insert(iri(1), p("hasEstimateCardinality"), Term::num(2949250.0));
            st.insert_in(Term::iri("http://g/w1"), iri(9), p("tag"), Term::lit("x"));
            assert_eq!(st.wal_records(), 3);
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 2);
        assert!(st.contains(&iri(1), &p("hasPopType"), &Term::lit("NLJOIN")));
        assert_eq!(st.graph_names(), vec![Term::iri("http://g/w1")]);
    }

    #[test]
    fn removes_and_clear_replay() {
        let dir = ScratchDir::new("persist-remove");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.insert(iri(2), p("a"), Term::lit("2"));
            st.remove(&iri(1), &p("a"), &Term::lit("1"));
        }
        {
            let st = DurableStore::open(dir.path()).unwrap();
            assert_eq!(st.len(), 1);
            assert!(st.contains(&iri(2), &p("a"), &Term::lit("2")));
        }
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.clear();
            st.insert(iri(3), p("a"), Term::lit("3"));
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 1);
        assert!(st.contains(&iri(3), &p("a"), &Term::lit("3")));
    }

    #[test]
    fn noop_mutations_journal_nothing() {
        let dir = ScratchDir::new("persist-noop");
        let mut st = DurableStore::open(dir.path()).unwrap();
        assert!(st.insert(iri(1), p("a"), Term::lit("1")));
        assert!(!st.insert(iri(1), p("a"), Term::lit("1")));
        assert!(!st.remove(&iri(2), &p("a"), &Term::lit("1")));
        st.clear();
        st.clear(); // second clear on empty store: no record
        assert_eq!(st.wal_records(), 2); // first insert + first clear
        assert!(st.wal_bytes() > 0);
    }

    #[test]
    fn compact_snapshots_and_rotates_log() {
        let dir = ScratchDir::new("persist-compact");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            for i in 0..20u32 {
                st.insert(iri(i), p("hasOutputStream"), iri(i + 1));
            }
            st.insert_in(Term::iri("http://g/w"), iri(0), p("tag"), Term::lit("t"));
            st.compact().unwrap();
            assert_eq!(st.generation(), 1);
            assert_eq!(st.wal_records(), 0);
            // Post-compaction writes land in the new log.
            st.insert(iri(100), p("hasOutputStream"), iri(101));
            assert_eq!(st.wal_records(), 1);
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.generation(), 1);
        assert_eq!(st.len(), 21);
        assert_eq!(st.graph_names().len(), 1);
    }

    #[test]
    fn recovery_prefers_newest_valid_snapshot() {
        let dir = ScratchDir::new("persist-fallback");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.compact().unwrap(); // generation 1
            st.insert(iri(2), p("a"), Term::lit("2"));
            st.compact().unwrap(); // generation 2
            st.insert(iri(3), p("a"), Term::lit("3"));
        }
        // Corrupt the newest snapshot: recovery must fall back to
        // generation 1 and replay wal-1 (the insert of pop/2) and wal-2
        // (pop/3) on top of it.
        let snap2 = snapshot_file(dir.path(), 2);
        fs::write(&snap2, b"GALOSNAPgarbage").unwrap();
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 3);
        for i in 1..=3 {
            assert!(st.contains(&iri(i), &p("a"), &Term::lit(i.to_string())));
        }
    }

    #[test]
    fn fallback_recovery_then_compaction_keeps_a_valid_chain() {
        // The double-failure scenario: the newest snapshot corrupts, the
        // store recovers by fallback and compacts — and then the NEW
        // newest snapshot corrupts too. Recovery must still reproduce
        // full history (the corrupt snapshot was quarantined at open, so
        // compaction retained a chain anchored at a *valid* snapshot).
        let dir = ScratchDir::new("persist-double-fallback");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.compact().unwrap(); // generation 1
            st.insert(iri(2), p("a"), Term::lit("2"));
            st.compact().unwrap(); // generation 2
            st.insert(iri(3), p("a"), Term::lit("3"));
        }
        fs::write(snapshot_file(dir.path(), 2), b"GALOSNAPgarbage").unwrap();
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            assert_eq!(st.len(), 3, "fallback to snapshot 1 + wal replay");
            st.insert(iri(4), p("a"), Term::lit("4"));
            st.compact().unwrap(); // generation 3
            st.insert(iri(5), p("a"), Term::lit("5"));
        }
        fs::write(snapshot_file(dir.path(), 3), b"GALOSNAPgarbage").unwrap();
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 5, "second fallback still covers full history");
        for i in 1..=5 {
            assert!(st.contains(&iri(i), &p("a"), &Term::lit(i.to_string())));
        }
    }

    #[test]
    fn broken_generation_chain_is_an_error_not_partial_history() {
        // If no snapshot validates and the early logs are gone, opening
        // must fail loudly instead of replaying a suffix of history onto
        // an empty store.
        let dir = ScratchDir::new("persist-broken-chain");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.compact().unwrap(); // snapshot-1 + wal-1; wal-0 retained
            st.insert(iri(2), p("a"), Term::lit("2"));
            st.compact().unwrap(); // snapshot-2 + wal-2; prunes gen 0
            st.insert(iri(3), p("a"), Term::lit("3"));
        }
        // Corrupt every snapshot: the surviving logs start at gen 1, so
        // generation 0's history is unreachable.
        fs::write(snapshot_file(dir.path(), 1), b"GALOSNAPgarbage").unwrap();
        fs::write(snapshot_file(dir.path(), 2), b"GALOSNAPgarbage").unwrap();
        let err = DurableStore::open(dir.path()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("no recoverable generation chain"));
    }

    #[test]
    fn corrupt_mid_chain_log_is_an_error_not_a_gap() {
        // Fallback recovery replays multiple log generations. A bad
        // record in a NON-newest log must fail the open loudly: stopping
        // there while still applying later generations would open a
        // silent gap in the middle of acknowledged history. (Only the
        // newest log may end torn — that is the crash-mid-append case.)
        let dir = ScratchDir::new("persist-midchain");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1111"));
            st.compact().unwrap(); // gen 1: snapshot-1 + wal-1
            st.insert(iri(2), p("a"), Term::lit("2222")); // lands in wal-1
            st.compact().unwrap(); // gen 2
            st.insert(iri(3), p("a"), Term::lit("3333")); // lands in wal-2
        }
        // Corrupt the newest snapshot so recovery falls back to
        // snapshot-1 and must replay wal-1 then wal-2 …
        fs::write(snapshot_file(dir.path(), 2), b"GALOSNAPgarbage").unwrap();
        // … and flip a digit inside wal-1's committed record.
        let wal1 = wal_file(dir.path(), 1);
        let text = fs::read_to_string(&wal1)
            .unwrap()
            .replacen("2222", "2922", 1);
        fs::write(&wal1, text).unwrap();
        let err = DurableStore::open(dir.path()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("non-newest"), "{err}");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = ScratchDir::new("persist-torn");
        let wal_path;
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            for i in 0..10u32 {
                st.insert(iri(i), p("a"), Term::num(i as f64));
            }
            wal_path = st.wal_path();
        }
        // Tear the last record mid-bytes.
        let len = fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 9, "only the torn trailing record is dropped");
        // The log was truncated back to the committed prefix, so the next
        // write starts at a record boundary and a further reopen agrees.
        assert_eq!(fs::metadata(&wal_path).unwrap().len(), st.wal_bytes());
        let mut st2 = DurableStore::open(dir.path()).unwrap();
        st2.insert(iri(99), p("a"), Term::lit("fresh"));
        drop(st2);
        let st3 = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st3.len(), 10);
    }

    #[test]
    fn garbage_mid_log_drops_the_tail() {
        let dir = ScratchDir::new("persist-garbage");
        let wal_path;
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.insert(iri(2), p("a"), Term::lit("2"));
            wal_path = st.wal_path();
        }
        let mut bytes = fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(b"<oops this is not a record\n");
        bytes.extend_from_slice(
            render_record(&Record::Insert(iri(3), p("a"), Term::lit("3"), None)).as_bytes(),
        );
        fs::write(&wal_path, &bytes).unwrap();
        // Replay stops at the garbage record; the (valid-looking) record
        // after it is part of the dropped tail — a torn write must never
        // resurrect later bytes.
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn snapshot_roundtrips_interner_and_graphs() {
        let mut st = IndexedStore::new();
        st.insert(iri(1), p("a"), Term::lit("x"));
        st.insert(iri(2), p("b"), iri(1));
        st.insert_in(Term::iri("http://g/1"), iri(1), p("t"), Term::lit("y"));
        // Interned-but-unused terms survive snapshots (though not WAL
        // replay) because the full interner table is serialized.
        st.intern(Term::lit("unused"));
        let bytes = encode_snapshot(&st);
        let dir = ScratchDir::new("persist-snap");
        let path = dir.path().join("snap.galo");
        fs::write(&path, &bytes).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.term_id(&Term::lit("unused")).is_some());
        assert_eq!(back.graph_names(), vec![Term::iri("http://g/1")]);
        // Term ids are reproduced exactly.
        assert_eq!(back.term_id(&iri(1)), st.term_id(&iri(1)));
        // A flipped byte fails validation.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn auto_compaction_honors_threshold() {
        let dir = ScratchDir::new("persist-auto");
        let mut st = DurableStore::open_with(
            dir.path(),
            DurableOptions {
                auto_compact_records: Some(10),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        for i in 0..25u32 {
            st.insert(iri(i), p("a"), Term::num(i as f64));
        }
        assert!(st.generation() >= 2, "two auto-compactions by 25 records");
        assert!(st.wal_records() < 10);
        drop(st);
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 25);
    }

    #[test]
    fn terms_are_escaped_through_the_log() {
        let dir = ScratchDir::new("persist-escape");
        let nasty = Term::lit("say \"hi\"\nthen\\leave\ttab");
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), nasty.clone());
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert!(st.contains(&iri(1), &p("a"), &nasty));
    }

    #[test]
    fn fresh_logs_are_v2_with_per_record_checksums() {
        let dir = ScratchDir::new("persist-v2");
        let wal_path;
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1"));
            st.insert(iri(2), p("a"), Term::lit("2"));
            wal_path = st.wal_path();
        }
        let text = fs::read_to_string(&wal_path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(WAL_V2_HEADER));
        for line in lines {
            let (_, sum) = line.rsplit_once(" #").expect("checksummed record");
            assert_eq!(sum.len(), 16, "{line}");
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn checksum_rejects_in_place_corruption() {
        // Flip one digit inside a committed record: the line still parses
        // as a record, so v1 replay would resurrect a WRONG triple; the
        // v2 checksum rejects it (and everything after it).
        let dir = ScratchDir::new("persist-crc");
        let wal_path;
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            st.insert(iri(1), p("a"), Term::lit("1111"));
            st.insert(iri(2), p("a"), Term::lit("2222"));
            wal_path = st.wal_path();
        }
        let text = fs::read_to_string(&wal_path).unwrap();
        let corrupted = text.replacen("1111", "1911", 1);
        assert_ne!(text, corrupted, "test must actually corrupt a record");
        fs::write(&wal_path, corrupted).unwrap();
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 0, "corrupted record and its tail are dropped");
        assert!(!st.contains(&iri(1), &p("a"), &Term::lit("1911")));
    }

    #[test]
    fn legacy_v1_logs_replay_and_keep_their_format() {
        // A log without the v2 header (written by an older build) must
        // replay under v1 rules, and appends must stay v1 so the file
        // never mixes formats.
        let dir = ScratchDir::new("persist-v1-compat");
        let wal_path = wal_file(dir.path(), 0);
        let mut legacy = String::new();
        legacy.push_str(&render_record(&Record::Insert(
            iri(1),
            p("a"),
            Term::lit("1"),
            None,
        )));
        legacy.push_str(&render_record(&Record::Insert(
            iri(2),
            p("a"),
            Term::lit("2"),
            Some(Term::iri("http://g/w")),
        )));
        fs::write(&wal_path, &legacy).unwrap();
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            assert_eq!(st.len(), 1);
            assert_eq!(st.graph_names().len(), 1);
            st.insert(iri(3), p("a"), Term::lit("3"));
        }
        let text = fs::read_to_string(&wal_path).unwrap();
        assert!(
            text.lines().all(|l| l.rsplit_once(" #").is_none()),
            "v1 log must not grow checksummed records: {text}"
        );
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 2);
        // Compaction rotates onto a fresh v2 log.
        let mut st = st;
        st.compact().unwrap();
        st.insert(iri(4), p("a"), Term::lit("4"));
        let rotated = fs::read_to_string(st.wal_path()).unwrap();
        assert!(rotated.starts_with(WAL_V2_HEADER));
        drop(st);
        assert_eq!(DurableStore::open(dir.path()).unwrap().len(), 3);
    }

    #[test]
    fn group_commit_flushes_once_per_batch() {
        let dir = ScratchDir::new("persist-batch");
        let wal_path;
        {
            let mut st = DurableStore::open(dir.path()).unwrap();
            wal_path = st.wal_path();
            st.begin_batch();
            for i in 0..10u32 {
                st.insert(iri(i), p("a"), Term::num(i as f64));
            }
            // Buffered: nothing past the header is on disk yet (the
            // records are far below BufWriter's spill threshold).
            assert_eq!(
                fs::metadata(&wal_path).unwrap().len(),
                (WAL_V2_HEADER.len() + 1) as u64
            );
            st.end_batch();
            assert_eq!(fs::metadata(&wal_path).unwrap().len(), st.wal_bytes());
        }
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 10, "every batched record was committed");
    }

    #[test]
    fn empty_dir_opens_empty_store() {
        let dir = ScratchDir::new("persist-empty");
        let st = DurableStore::open(dir.path()).unwrap();
        assert!(st.is_empty());
        assert_eq!(st.generation(), 0);
        assert_eq!(st.wal_records(), 0);
    }

    /// Regression: the auto-compaction threshold tripping *inside* an open
    /// group-commit bracket must not rotate the log mid-batch. The old
    /// inline check compacted immediately, snapshotting the batch's
    /// journaled-so-far prefix — so a kill before `end_batch` resurrected
    /// half an uncommitted batch on reopen. (This test fails on that code
    /// path: the mid-batch generation stays 0, and after the kill only the
    /// pre-batch records exist.)
    #[test]
    fn mid_batch_auto_compaction_defers_and_keeps_batches_atomic() {
        let dir = ScratchDir::new("persist-midbatch");
        let mut st = DurableStore::open_with(
            dir.path(),
            DurableOptions {
                auto_compact_records: Some(5),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        // Three committed pre-batch records.
        for i in 0..3u32 {
            st.insert(iri(i), p("pre"), Term::num(i as f64));
        }
        assert_eq!(st.generation(), 0);
        // An open batch crosses the threshold.
        st.begin_batch();
        for i in 100..105u32 {
            st.insert(iri(i), p("batch"), Term::num(i as f64));
        }
        assert_eq!(
            st.generation(),
            0,
            "the log must not rotate under an open batch"
        );
        // Kill before end_batch: leak the store so the buffered batch
        // records are dropped exactly as a crash would drop them (the
        // pre-batch records were already flushed per record).
        std::mem::forget(st);
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(
            st.len(),
            3,
            "an uncommitted batch is all-or-nothing: no prefix survives"
        );
        for i in 0..3u32 {
            assert!(st.contains(&iri(i), &p("pre"), &Term::num(i as f64)));
        }
    }

    #[test]
    fn deferred_auto_compaction_runs_at_end_batch() {
        let dir = ScratchDir::new("persist-deferred");
        let mut st = DurableStore::open_with(
            dir.path(),
            DurableOptions {
                auto_compact_records: Some(5),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        st.begin_batch();
        for i in 0..8u32 {
            st.insert(iri(i), p("a"), Term::num(i as f64));
        }
        assert_eq!(st.generation(), 0, "deferred while the batch is open");
        st.end_batch();
        assert_eq!(st.generation(), 1, "the owed compaction ran at end_batch");
        assert_eq!(st.wal_records(), 0);
        drop(st);
        let st = DurableStore::open(dir.path()).unwrap();
        assert_eq!(st.len(), 8, "the whole batch survives the fold");
    }

    #[test]
    fn failed_compaction_is_counted_and_surfaced() {
        let dir = ScratchDir::new("persist-compactfail");
        let mut st = DurableStore::open(dir.path()).unwrap();
        st.insert(iri(1), p("a"), Term::lit("1"));
        assert_eq!(st.compactions_failed(), 0);
        assert_eq!(st.last_compaction_error(), None);
        // Block the rotation: a directory squats on the next log's path.
        let blocker = wal_file(dir.path(), 1);
        fs::create_dir(&blocker).unwrap();
        assert!(st.compact().is_err());
        assert_eq!(st.compactions_failed(), 1);
        assert!(st.last_compaction_error().is_some());
        let pressure = st.storage_pressure().expect("durable stores report");
        assert_eq!(pressure.compactions_failed, 1);
        assert!(pressure.last_compaction_error.is_some());
        assert_eq!(pressure.wal_records, st.wal_records());
        assert_eq!(pressure.wal_bytes, st.wal_bytes());
        // Writes keep flowing on the old log; the disk heals; the next
        // compaction succeeds, clears the error and keeps the count.
        st.insert(iri(2), p("a"), Term::lit("2"));
        fs::remove_dir(&blocker).unwrap();
        st.compact().unwrap();
        assert_eq!(st.compactions_failed(), 1);
        assert_eq!(st.last_compaction_error(), None);
        drop(st);
        assert_eq!(DurableStore::open(dir.path()).unwrap().len(), 2);
    }

    #[test]
    fn auto_compaction_failure_counts_and_keeps_serving() {
        let dir = ScratchDir::new("persist-autofail");
        let mut st = DurableStore::open_with(
            dir.path(),
            DurableOptions {
                auto_compact_records: Some(3),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        let blocker = wal_file(dir.path(), 1);
        fs::create_dir(&blocker).unwrap();
        for i in 0..6u32 {
            st.insert(iri(i), p("a"), Term::num(i as f64));
        }
        assert!(
            st.compactions_failed() >= 1,
            "the failed auto-compactions were counted, not just printed"
        );
        assert_eq!(st.generation(), 0);
        assert_eq!(st.len(), 6, "writes kept flowing past the failures");
        fs::remove_dir(&blocker).unwrap();
        st.insert(iri(100), p("a"), Term::lit("x"));
        assert_eq!(st.generation(), 1, "healed disk: the next attempt folds");
        assert_eq!(st.last_compaction_error(), None);
        drop(st);
        assert_eq!(DurableStore::open(dir.path()).unwrap().len(), 7);
    }
}
