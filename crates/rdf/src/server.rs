//! A Fuseki-like concurrent store facade.
//!
//! The paper houses the knowledge base in "an Apache Jena Fuseki SPARQL
//! server … a SPARQL end-point accessible via HTTP … parallelism built in,
//! enabling multiple requests to be performed concurrently … a robust,
//! transactional, and persistent storage layer" (§3.2). This reproduction
//! replaces the HTTP surface with an in-process API with the same
//! operations: concurrent reads, exclusive writes, text-level SPARQL
//! endpoints, and N-Triples persistence.

use parking_lot::RwLock;

use crate::ntriples::{from_ntriples, to_ntriples, NtParseError};
use crate::sparql::{apply_update, evaluate, parse_select, parse_update, ResultSet, SelectQuery, SparqlParseError};
use crate::store::TripleStore;
use crate::term::Term;

/// Errors surfaced by the endpoint.
#[derive(Debug)]
pub enum ServerError {
    Parse(SparqlParseError),
    Persistence(NtParseError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "{e}"),
            ServerError::Persistence(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SparqlParseError> for ServerError {
    fn from(e: SparqlParseError) -> Self {
        ServerError::Parse(e)
    }
}

impl From<NtParseError> for ServerError {
    fn from(e: NtParseError) -> Self {
        ServerError::Persistence(e)
    }
}

/// In-process SPARQL endpoint with reader/writer concurrency.
#[derive(Debug, Default)]
pub struct FusekiLite {
    store: RwLock<TripleStore>,
}

impl FusekiLite {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing store.
    pub fn from_store(store: TripleStore) -> Self {
        FusekiLite {
            store: RwLock::new(store),
        }
    }

    /// Execute a SPARQL `SELECT` from text.
    pub fn query(&self, text: &str) -> Result<ResultSet, ServerError> {
        let q = parse_select(text)?;
        Ok(self.query_parsed(&q))
    }

    /// Execute a pre-parsed `SELECT` (the matching engine caches parsed
    /// queries across the workload).
    pub fn query_parsed(&self, query: &SelectQuery) -> ResultSet {
        evaluate(&self.store.read(), query)
    }

    /// Execute a SPARQL update from text; returns affected triple count.
    pub fn update(&self, text: &str) -> Result<usize, ServerError> {
        let u = parse_update(text)?;
        Ok(apply_update(&mut self.store.write(), &u))
    }

    /// Insert a batch of triples in one write transaction.
    pub fn insert_triples(&self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        let mut store = self.store.write();
        triples
            .into_iter()
            .filter(|(s, p, o)| store.insert(s.clone(), p.clone(), o.clone()))
            .count()
    }

    /// Run a closure with read access to the store (bulk extraction).
    pub fn with_store<T>(&self, f: impl FnOnce(&TripleStore) -> T) -> T {
        f(&self.store.read())
    }

    /// Run a closure with exclusive write access (a write transaction).
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut TripleStore) -> T) -> T {
        f(&mut self.store.write())
    }

    /// Number of triples currently stored.
    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the dataset as N-Triples.
    pub fn export(&self) -> String {
        to_ntriples(&self.store.read())
    }

    /// Replace the dataset from N-Triples text.
    pub fn import(&self, text: &str) -> Result<usize, ServerError> {
        let store = from_ntriples(text)?;
        let n = store.len();
        *self.store.write() = store;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seeded() -> FusekiLite {
        let f = FusekiLite::new();
        f.insert_triples((0..50u32).map(|i| {
            (
                Term::iri(format!("http://galo/qep/pop/{i}")),
                Term::iri("http://galo/qep/property/hasEstimateCardinality"),
                Term::lit(format!("{}", i * 100)),
            )
        }));
        f
    }

    #[test]
    fn query_text_endpoint() {
        let f = seeded();
        let rs = f
            .query(
                "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
                 FILTER(?c >= 4800) }",
            )
            .unwrap();
        assert_eq!(rs.len(), 2); // 4800, 4900.
    }

    #[test]
    fn update_text_endpoint() {
        let f = seeded();
        let n = f
            .update("INSERT DATA { <http://x> <http://p> \"1\" . <http://y> <http://p> \"2\" . }")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(f.len(), 52);
        let removed = f.update("DELETE WHERE { ?s <http://p> ?o . }").unwrap();
        assert_eq!(removed, 2);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn export_import_roundtrip() {
        let f = seeded();
        let text = f.export();
        let g = FusekiLite::new();
        assert_eq!(g.import(&text).unwrap(), 50);
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let f = Arc::new(seeded());
        let mut handles = Vec::new();
        for t in 0..4 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    if t == 0 && i % 5 == 0 {
                        f.insert_triples([(
                            Term::iri(format!("http://w/{i}")),
                            Term::iri("http://p"),
                            Term::lit("x"),
                        )]);
                    } else {
                        let rs = f
                            .query(
                                "SELECT ?s WHERE { ?s \
                                 <http://galo/qep/property/hasEstimateCardinality> ?c . }",
                            )
                            .unwrap();
                        assert!(rs.len() >= 50);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 54);
    }

    #[test]
    fn parse_errors_are_reported() {
        let f = seeded();
        assert!(f.query("SELEKT ?x WHERE { }").is_err());
        assert!(f.update("UPSERT DATA {}").is_err());
    }
}
