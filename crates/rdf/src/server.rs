//! A Fuseki-like concurrent store facade.
//!
//! The paper houses the knowledge base in "an Apache Jena Fuseki SPARQL
//! server … a SPARQL end-point accessible via HTTP … parallelism built in,
//! enabling multiple requests to be performed concurrently … a robust,
//! transactional, and persistent storage layer" (§3.2). This reproduction
//! replaces the HTTP surface with an in-process API with the same
//! operations: concurrent reads, exclusive writes, text-level SPARQL
//! endpoints, and N-Triples persistence.

use parking_lot::RwLock;

use crate::ntriples::{parse_ntriples, to_ntriples, NtParseError};
use crate::sparql::eval::{evaluate_prepared, prepare_seeded, PreparedQuery};
use crate::sparql::{
    apply_update, constants_interned, evaluate, parse_select, parse_update, projected_vars,
    ResultSet, SelectQuery, SparqlParseError,
};
use crate::store::{IndexedStore, TripleStore};
use crate::term::{Term, TermId};

/// One compiled knowledge-base probe: a pre-parsed `SELECT` plus variable
/// pre-bindings (the matching engine binds `?tmpl` to one candidate
/// template per probe). Evaluated in batches via [`FusekiLite::probe_batch`].
#[derive(Debug, Clone)]
pub struct Probe<'a> {
    pub query: &'a SelectQuery,
    /// Variables to bind before evaluation; a term that was never interned
    /// makes the probe trivially empty.
    pub bind: Vec<(String, Term)>,
}

/// Errors surfaced by the endpoint.
#[derive(Debug)]
pub enum ServerError {
    Parse(SparqlParseError),
    Persistence(NtParseError),
    /// Durable-backend I/O failure (open, recovery or compaction).
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "{e}"),
            ServerError::Persistence(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SparqlParseError> for ServerError {
    fn from(e: SparqlParseError) -> Self {
        ServerError::Parse(e)
    }
}

impl From<NtParseError> for ServerError {
    fn from(e: NtParseError) -> Self {
        ServerError::Persistence(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// In-process SPARQL endpoint with reader/writer concurrency.
///
/// The endpoint is backend-agnostic: it holds a boxed [`TripleStore`], so
/// a persistent or sharded store drops in through [`FusekiLite::with_backend`]
/// without touching any caller.
#[derive(Debug)]
pub struct FusekiLite {
    store: RwLock<Box<dyn TripleStore>>,
}

impl Default for FusekiLite {
    fn default() -> Self {
        Self::with_backend(Box::<IndexedStore>::default())
    }
}

impl FusekiLite {
    /// An endpoint over the default hash-indexed in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// An endpoint over a caller-supplied backend.
    pub fn with_backend(backend: Box<dyn TripleStore>) -> Self {
        FusekiLite {
            store: RwLock::new(backend),
        }
    }

    /// Wrap an existing store.
    pub fn from_store(store: impl TripleStore + 'static) -> Self {
        Self::with_backend(Box::new(store))
    }

    /// An endpoint over a [`DurableStore`](crate::persist::DurableStore)
    /// rooted at `dir`: the dataset-on-disk constructor. Opening recovers
    /// the newest valid snapshot plus the committed write-ahead-log tail
    /// (a torn trailing record is dropped), so the endpoint resumes where
    /// the last process stopped.
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> Result<Self, ServerError> {
        Ok(Self::from_store(crate::persist::DurableStore::open(dir)?))
    }

    /// [`open_durable`](Self::open_durable) with explicit
    /// [`DurableOptions`](crate::persist::DurableOptions).
    pub fn open_durable_with(
        dir: impl AsRef<std::path::Path>,
        options: crate::persist::DurableOptions,
    ) -> Result<Self, ServerError> {
        Ok(Self::from_store(crate::persist::DurableStore::open_with(
            dir, options,
        )?))
    }

    /// Checkpoint the backend ([`TripleStore::compact`]): a no-op for the
    /// in-memory stores, a snapshot-write-plus-log-rotation for a durable
    /// one. Takes the write lock, so it serializes with updates.
    pub fn compact(&self) -> std::io::Result<()> {
        self.store.write().compact()
    }

    /// Execute a SPARQL `SELECT` from text.
    pub fn query(&self, text: &str) -> Result<ResultSet, ServerError> {
        let q = parse_select(text)?;
        Ok(self.query_parsed(&q))
    }

    /// Execute a pre-parsed `SELECT` (the matching engine caches parsed
    /// queries across the workload).
    pub fn query_parsed(&self, query: &SelectQuery) -> ResultSet {
        evaluate(self.store.read().as_ref(), query)
    }

    /// Evaluate a batch of compiled probes under **one** read lock — the
    /// matching engine submits all of a plan's segment probes in one call
    /// instead of re-acquiring the lock per segment. Before evaluating,
    /// each probe's constants (ground pattern terms, predicate IRIs, and
    /// pre-bindings) are resolved through the store's interner; a probe
    /// with any unresolved constant is answered with an empty result set
    /// without touching the indexes.
    pub fn probe_batch(&self, probes: &[Probe<'_>]) -> Vec<ResultSet> {
        let guard = self.store.read();
        let store = guard.as_ref();
        // Consecutive probes over the same query with the same seed
        // variables (the common case: one probe per candidate template of
        // one segment) share a single prepared plan — pattern ordering and
        // filter scheduling are paid once per segment, not per candidate.
        struct Cached<'q> {
            query_ptr: *const SelectQuery,
            seed_vars: Vec<String>,
            /// `None` when a ground constant of the query was never
            /// interned: every evaluation is empty, so the query is not
            /// even prepared — only its projection is kept.
            prepared: Option<PreparedQuery<'q>>,
            projected: Vec<String>,
        }
        let mut cached: Option<Cached<'_>> = None;
        probes
            .iter()
            .map(|probe| {
                let reusable = cached.as_ref().is_some_and(|c| {
                    std::ptr::eq(c.query_ptr, probe.query)
                        && c.seed_vars.len() == probe.bind.len()
                        && c.seed_vars
                            .iter()
                            .zip(&probe.bind)
                            .all(|(v, (bv, _))| v == bv)
                });
                if !reusable {
                    let seed_vars: Vec<String> =
                        probe.bind.iter().map(|(v, _)| v.clone()).collect();
                    cached = Some(Cached {
                        query_ptr: probe.query,
                        prepared: constants_interned(store, probe.query)
                            .then(|| prepare_seeded(store, probe.query, &seed_vars)),
                        projected: projected_vars(probe.query),
                        seed_vars,
                    });
                }
                let cache = cached.as_ref().expect("prepared above");
                let empty = || ResultSet {
                    vars: cache.projected.clone(),
                    rows: Vec::new(),
                };
                let Some(prepared) = &cache.prepared else {
                    return empty();
                };
                let mut seed_ids: Vec<TermId> = Vec::with_capacity(probe.bind.len());
                for (_, term) in &probe.bind {
                    match store.term_id(term) {
                        Some(id) => seed_ids.push(id),
                        None => return empty(),
                    }
                }
                evaluate_prepared(store, prepared, &seed_ids)
            })
            .collect()
    }

    /// Execute a SPARQL update from text; returns affected triple count.
    pub fn update(&self, text: &str) -> Result<usize, ServerError> {
        let u = parse_update(text)?;
        Ok(apply_update(self.store.write().as_mut(), &u))
    }

    /// Insert a batch of triples in one write transaction.
    pub fn insert_triples(&self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        let mut store = self.store.write();
        triples
            .into_iter()
            .filter(|(s, p, o)| store.insert(s.clone(), p.clone(), o.clone()))
            .count()
    }

    /// Insert a batch of triples into a named graph in one transaction.
    pub fn insert_triples_in(
        &self,
        graph: Term,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> usize {
        let mut store = self.store.write();
        let g = store.intern(graph);
        triples
            .into_iter()
            .filter(|(s, p, o)| {
                let t = (
                    store.intern(s.clone()),
                    store.intern(p.clone()),
                    store.intern(o.clone()),
                );
                store.insert_ids_in(g, t)
            })
            .count()
    }

    /// Names of the dataset's non-empty named graphs.
    pub fn graph_names(&self) -> Vec<Term> {
        self.store.read().graph_names()
    }

    /// Run a closure with read access to the store (bulk extraction).
    pub fn with_store<T>(&self, f: impl FnOnce(&dyn TripleStore) -> T) -> T {
        f(self.store.read().as_ref())
    }

    /// Run a closure with exclusive write access (a write transaction).
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut dyn TripleStore) -> T) -> T {
        f(self.store.write().as_mut())
    }

    /// Number of triples currently stored.
    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the dataset as N-Triples.
    pub fn export(&self) -> String {
        to_ntriples(self.store.read().as_ref())
    }

    /// Replace the dataset from N-Triples / N-Quads text (quad lines
    /// restore named graphs). The text is fully parsed before the current
    /// contents are dropped, so a malformed import leaves the dataset
    /// untouched — and the backend is preserved. Returns the number of
    /// default-graph triples imported.
    pub fn import(&self, text: &str) -> Result<usize, ServerError> {
        let triples = parse_ntriples(text)?;
        let mut store = self.store.write();
        store.clear();
        let mut n = 0;
        for (s, p, o, graph) in triples {
            match graph {
                Some(g) => {
                    store.insert_in(g, s, p, o);
                }
                None => {
                    if store.insert(s, p, o) {
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seeded() -> FusekiLite {
        let f = FusekiLite::new();
        f.insert_triples((0..50u32).map(|i| {
            (
                Term::iri(format!("http://galo/qep/pop/{i}")),
                Term::iri("http://galo/qep/property/hasEstimateCardinality"),
                Term::lit(format!("{}", i * 100)),
            )
        }));
        f
    }

    #[test]
    fn query_text_endpoint() {
        let f = seeded();
        let rs = f
            .query(
                "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
                 FILTER(?c >= 4800) }",
            )
            .unwrap();
        assert_eq!(rs.len(), 2); // 4800, 4900.
    }

    #[test]
    fn update_text_endpoint() {
        let f = seeded();
        let n = f
            .update("INSERT DATA { <http://x> <http://p> \"1\" . <http://y> <http://p> \"2\" . }")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(f.len(), 52);
        let removed = f.update("DELETE WHERE { ?s <http://p> ?o . }").unwrap();
        assert_eq!(removed, 2);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn export_import_roundtrip() {
        let f = seeded();
        let text = f.export();
        let g = FusekiLite::new();
        assert_eq!(g.import(&text).unwrap(), 50);
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn export_import_preserves_named_graphs() {
        let f = seeded();
        let g1 = Term::iri("http://galo/kb/graph/workload/tpcds");
        f.insert_triples_in(
            g1.clone(),
            [
                (
                    Term::iri("http://t/1"),
                    Term::iri("http://p"),
                    Term::lit("a"),
                ),
                (
                    Term::iri("http://t/2"),
                    Term::iri("http://p"),
                    Term::lit("b"),
                ),
            ],
        );
        let text = f.export();
        let g = FusekiLite::new();
        assert_eq!(g.import(&text).unwrap(), 50); // default-graph triples only
        assert_eq!(g.len(), 50);
        assert_eq!(g.graph_names(), vec![g1.clone()]);
        let names = g.with_store(|st| {
            let gid = st.term_id(&g1).expect("graph interned");
            st.scan_in(gid, None, None, None).len()
        });
        assert_eq!(names, 2);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let f = Arc::new(seeded());
        let mut handles = Vec::new();
        for t in 0..4 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    if t == 0 && i % 5 == 0 {
                        f.insert_triples([(
                            Term::iri(format!("http://w/{i}")),
                            Term::iri("http://p"),
                            Term::lit("x"),
                        )]);
                    } else {
                        let rs = f
                            .query(
                                "SELECT ?s WHERE { ?s \
                                 <http://galo/qep/property/hasEstimateCardinality> ?c . }",
                            )
                            .unwrap();
                        assert!(rs.len() >= 50);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 54);
    }

    #[test]
    fn probe_batch_matches_per_query_evaluation() {
        let f = seeded();
        let q1 = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
             FILTER(?c >= 4800) }",
        )
        .unwrap();
        let q2 = parse_select(
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> \"100\" . }",
        )
        .unwrap();
        let jobs = vec![
            Probe {
                query: &q1,
                bind: vec![],
            },
            Probe {
                query: &q2,
                bind: vec![],
            },
        ];
        let batched = f.probe_batch(&jobs);
        assert_eq!(batched.len(), 2);
        assert_eq!(batched[0], f.query_parsed(&q1));
        assert_eq!(batched[1], f.query_parsed(&q2));
        assert_eq!(batched[0].len(), 2);
        assert_eq!(batched[1].len(), 1);
    }

    #[test]
    fn probe_bindings_restrict_solutions() {
        let f = seeded();
        let q = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
        )
        .unwrap();
        let jobs = vec![Probe {
            query: &q,
            bind: vec![("s".to_string(), Term::iri("http://galo/qep/pop/7"))],
        }];
        let rs = f.probe_batch(&jobs).remove(0);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "s").unwrap().str_value(), "http://galo/qep/pop/7");
        assert_eq!(rs.get(0, "c").unwrap().str_value(), "700");
    }

    #[test]
    fn probe_with_unresolved_constant_is_empty_without_eval() {
        let f = seeded();
        // Ground object never interned -> empty, projection preserved.
        let q = parse_select(
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> \"nope\" . }",
        )
        .unwrap();
        // Pre-binding to a never-interned IRI -> empty as well.
        let q2 = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
        )
        .unwrap();
        let jobs = vec![
            Probe {
                query: &q,
                bind: vec![],
            },
            Probe {
                query: &q2,
                bind: vec![("s".to_string(), Term::iri("http://nowhere"))],
            },
        ];
        let out = f.probe_batch(&jobs);
        assert!(out[0].is_empty());
        assert_eq!(out[0].vars, vec!["s"]);
        assert!(out[1].is_empty());
        assert_eq!(out[1].vars, vec!["s", "c"]);
    }

    #[test]
    fn parse_errors_are_reported() {
        let f = seeded();
        assert!(f.query("SELEKT ?x WHERE { }").is_err());
        assert!(f.update("UPSERT DATA {}").is_err());
    }
}
