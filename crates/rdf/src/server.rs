//! A Fuseki-like concurrent store facade.
//!
//! The paper houses the knowledge base in "an Apache Jena Fuseki SPARQL
//! server … a SPARQL end-point accessible via HTTP … parallelism built in,
//! enabling multiple requests to be performed concurrently … a robust,
//! transactional, and persistent storage layer" (§3.2). This reproduction
//! replaces the HTTP surface with an in-process API with the same
//! operations: concurrent reads, exclusive writes, text-level SPARQL
//! endpoints, and N-Triples persistence.

use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::ntriples::{parse_ntriples, to_ntriples, NtParseError};
use crate::policy::{CompactionPolicy, CompactionTarget, Compactor, CompactorStats};
use crate::shard::{ShardRouter, ShardStats, ShardedStore};
use crate::sparql::eval::{evaluate_prepared, prepare_seeded, PreparedQuery};
use crate::sparql::{
    apply_update, constants_interned, evaluate, parse_select, parse_update, projected_vars,
    ResultSet, SelectQuery, SparqlParseError,
};
use crate::store::{IndexedStore, ReadOnlyReplica, StoragePressure, TripleStore};
use crate::term::{Term, TermId};

/// One compiled knowledge-base probe: a pre-parsed `SELECT` plus variable
/// pre-bindings (the matching engine binds `?tmpl` to one candidate
/// template per probe). Evaluated in batches via [`FusekiLite::probe_batch`].
#[derive(Debug, Clone)]
pub struct Probe<'a> {
    pub query: &'a SelectQuery,
    /// Variables to bind before evaluation; a term that was never interned
    /// makes the probe trivially empty.
    pub bind: Vec<(String, Term)>,
}

/// Errors surfaced by the endpoint.
#[derive(Debug)]
pub enum ServerError {
    Parse(SparqlParseError),
    Persistence(NtParseError),
    /// Durable-backend I/O failure (open, recovery or compaction).
    Io(std::io::Error),
    /// The endpoint is a read replica ([`FusekiLite::set_read_only`]):
    /// the write was rejected, not applied and not dropped silently.
    ReadOnlyReplica(ReadOnlyReplica),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Parse(e) => write!(f, "{e}"),
            ServerError::Persistence(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "{e}"),
            ServerError::ReadOnlyReplica(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ReadOnlyReplica> for ServerError {
    fn from(e: ReadOnlyReplica) -> Self {
        ServerError::ReadOnlyReplica(e)
    }
}

impl From<SparqlParseError> for ServerError {
    fn from(e: SparqlParseError) -> Self {
        ServerError::Parse(e)
    }
}

impl From<NtParseError> for ServerError {
    fn from(e: NtParseError) -> Self {
        ServerError::Persistence(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// In-process SPARQL endpoint with reader/writer concurrency.
///
/// The endpoint is backend-agnostic: it holds a boxed [`TripleStore`], so
/// a persistent or sharded store drops in through [`FusekiLite::with_backend`]
/// without touching any caller.
///
/// A [`ShardedStore`] backend gets first-class treatment (the
/// [`open_sharded*`](Self::open_sharded) constructors): instead of
/// serializing every write behind the endpoint's single `RwLock`, write
/// batches lock only the shards they route to — concurrent writers whose
/// batches land on different shards proceed in parallel — and
/// [`probe_batch`](Self::probe_batch) fans the batch out over worker
/// threads that share one consistent all-shard read session.
#[derive(Debug)]
pub struct FusekiLite {
    /// Shared with the background [`Compactor`]'s watcher thread (when a
    /// [`compaction_policy`](Self::compaction_policy) is installed), which
    /// is why the backing sits behind an `Arc`.
    store: Arc<Backing>,
    /// Seqlock-style mutation epoch (see
    /// [`mutation_epoch`](Self::mutation_epoch)): **odd** while a write is
    /// in flight, **even** and advanced by one generation (+2) once a
    /// content-changing write has fully applied. Serving-tier caches
    /// validate entries with one atomic load against this counter.
    epoch: std::sync::atomic::AtomicU64,
    /// Serializes epoch transitions across writers (a [`MutationScope`]
    /// holds it from begin to commit), so the odd/even protocol stays
    /// sound even on a sharded backend where the data writes themselves
    /// only take per-shard locks.
    write_serial: Mutex<()>,
    /// Read-replica mode ([`set_read_only`](Self::set_read_only)): every
    /// client write endpoint rejects with a typed
    /// [`ReadOnlyReplica`] instead of applying.
    read_only: std::sync::atomic::AtomicBool,
    /// The installed background compaction policy, if any (see
    /// [`compaction_policy`](Self::compaction_policy)). Dropping the
    /// endpoint stops and joins the watcher thread.
    compactor: Mutex<Option<Compactor>>,
}

/// An open mutation window on a [`FusekiLite`] endpoint: created by
/// [`FusekiLite::mutation_scope`], which moves the epoch **odd** (write in
/// flight) and serializes against other writers. Apply the mutation —
/// through [`with_store_mut`](FusekiLite::with_store_mut), the raw write
/// helpers, or any derived-index updates — while the scope is alive, then
/// call [`commit`](Self::commit) with whether anything actually changed:
/// the epoch returns to **even**, advanced one generation for a real
/// change and restored unchanged for a no-op. Dropping the scope without
/// committing (including on panic) conservatively counts as a change.
///
/// This is what makes the serving cache's validation airtight: an
/// observer that reads the same *even* epoch before and after a
/// computation is guaranteed no mutation overlapped it — there is no
/// window where data has changed but the counter has not.
#[must_use = "a mutation scope left uncommitted invalidates caches conservatively"]
pub struct MutationScope<'a> {
    epoch: &'a std::sync::atomic::AtomicU64,
    _serial: MutexGuard<'a, ()>,
    committed: bool,
}

impl MutationScope<'_> {
    /// Close the window: `changed = true` advances the epoch to the next
    /// even generation, `false` restores the pre-scope value (a no-op
    /// write invalidates nothing).
    pub fn commit(mut self, changed: bool) {
        self.close(changed);
    }

    fn close(&mut self, changed: bool) {
        use std::sync::atomic::Ordering::SeqCst;
        if !self.committed {
            self.committed = true;
            if changed {
                self.epoch.fetch_add(1, SeqCst);
            } else {
                self.epoch.fetch_sub(1, SeqCst);
            }
        }
    }
}

impl Drop for MutationScope<'_> {
    fn drop(&mut self) {
        // An abandoned scope (early return, panic mid-mutation) must not
        // leave the epoch odd forever; treat it as a change so anything
        // computed meanwhile stays invalid.
        self.close(true);
    }
}

/// The two lock disciplines behind the endpoint: one global `RwLock`
/// over an arbitrary backend, or a sharded store with per-shard locks.
#[derive(Debug)]
enum Backing {
    Single(RwLock<Box<dyn TripleStore>>),
    Sharded(ShardedStore),
}

/// What the background [`Compactor`] watches: a single backend is one
/// "shard" (index 0); a sharded backend reports and compacts per shard,
/// holding only the one shard's write lock per fold.
impl CompactionTarget for Backing {
    fn storage_pressures(&self) -> Vec<StoragePressure> {
        match self {
            Backing::Single(lock) => vec![lock.read().storage_pressure().unwrap_or_default()],
            Backing::Sharded(s) => s.storage_pressures(),
        }
    }

    fn compact_shard(&self, shard: usize) -> std::io::Result<()> {
        match self {
            Backing::Single(lock) => {
                if shard != 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("shard {shard} out of range (single backend)"),
                    ));
                }
                lock.write().compact()
            }
            Backing::Sharded(s) => s.compact_shard(shard),
        }
    }
}

impl Default for FusekiLite {
    fn default() -> Self {
        Self::with_backend(Box::<IndexedStore>::default())
    }
}

impl FusekiLite {
    /// An endpoint over the default hash-indexed in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// An endpoint over a caller-supplied backend.
    pub fn with_backend(backend: Box<dyn TripleStore>) -> Self {
        FusekiLite {
            store: Arc::new(Backing::Single(RwLock::new(backend))),
            epoch: std::sync::atomic::AtomicU64::new(0),
            write_serial: Mutex::new(()),
            read_only: std::sync::atomic::AtomicBool::new(false),
            compactor: Mutex::new(None),
        }
    }

    /// Wrap an existing store.
    pub fn from_store(store: impl TripleStore + 'static) -> Self {
        Self::with_backend(Box::new(store))
    }

    /// An endpoint over a [`DurableStore`](crate::persist::DurableStore)
    /// rooted at `dir`: the dataset-on-disk constructor. Opening recovers
    /// the newest valid snapshot plus the committed write-ahead-log tail
    /// (a torn trailing record is dropped), so the endpoint resumes where
    /// the last process stopped.
    pub fn open_durable(dir: impl AsRef<std::path::Path>) -> Result<Self, ServerError> {
        Ok(Self::from_store(crate::persist::DurableStore::open(dir)?))
    }

    /// [`open_durable`](Self::open_durable) with explicit
    /// [`DurableOptions`](crate::persist::DurableOptions).
    pub fn open_durable_with(
        dir: impl AsRef<std::path::Path>,
        options: crate::persist::DurableOptions,
    ) -> Result<Self, ServerError> {
        Ok(Self::from_store(crate::persist::DurableStore::open_with(
            dir, options,
        )?))
    }

    /// An endpoint over an in-memory [`ShardedStore`]: `shards` indexed
    /// stores behind per-shard locks, template-affine routing. Write
    /// batches to different shards no longer serialize against each
    /// other.
    pub fn open_sharded(shards: usize) -> Self {
        Self::from_sharded(ShardedStore::new(shards))
    }

    /// An endpoint over a durable sharded store: one WAL+snapshot
    /// directory per shard under `dir`, recovered in parallel on open.
    pub fn open_sharded_durable(
        dir: impl AsRef<std::path::Path>,
        shards: usize,
    ) -> Result<Self, ServerError> {
        Ok(Self::from_sharded(ShardedStore::open_durable(dir, shards)?))
    }

    /// [`open_sharded_durable`](Self::open_sharded_durable) with explicit
    /// per-shard [`DurableOptions`](crate::persist::DurableOptions) and
    /// routing policy.
    pub fn open_sharded_durable_with(
        dir: impl AsRef<std::path::Path>,
        shards: usize,
        options: crate::persist::DurableOptions,
        router: Box<dyn ShardRouter>,
    ) -> Result<Self, ServerError> {
        Ok(Self::from_sharded(ShardedStore::open_durable_with(
            dir, shards, options, router,
        )?))
    }

    /// Wrap an existing sharded store, keeping its concurrent write and
    /// parallel probe paths (boxing it through
    /// [`with_backend`](Self::with_backend) would still be correct, but
    /// every write would serialize behind the endpoint's global lock).
    pub fn from_sharded(store: ShardedStore) -> Self {
        FusekiLite {
            store: Arc::new(Backing::Sharded(store)),
            epoch: std::sync::atomic::AtomicU64::new(0),
            write_serial: Mutex::new(()),
            read_only: std::sync::atomic::AtomicBool::new(false),
            compactor: Mutex::new(None),
        }
    }

    /// Put the endpoint in (or out of) read-replica mode. While set,
    /// every client write endpoint rejects loudly with a typed
    /// [`ReadOnlyReplica`]: the fallible endpoints
    /// ([`update`](Self::update), [`import`](Self::import)) return
    /// [`ServerError::ReadOnlyReplica`], and the infallible ones
    /// ([`insert_triples`](Self::insert_triples),
    /// [`insert_quads`](Self::insert_quads), …) raise it as a panic
    /// payload — a write on a replica is a caller bug, never silently
    /// applied or dropped. The replication feed bypasses the gate through
    /// [`with_store_mut`](Self::with_store_mut) +
    /// [`mutation_scope`](Self::mutation_scope), which stay privileged.
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only
            .store(read_only, std::sync::atomic::Ordering::SeqCst);
    }

    /// True when the endpoint is in read-replica mode.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Fallible read-only check for endpoints that return `Result`.
    fn write_guard(&self, op: &'static str) -> Result<(), ServerError> {
        if self.is_read_only() {
            Err(ReadOnlyReplica { op }.into())
        } else {
            Ok(())
        }
    }

    /// Read-only check for infallible endpoints: panics with a
    /// [`ReadOnlyReplica`] payload.
    fn assert_writable(&self, op: &'static str) {
        if self.is_read_only() {
            std::panic::panic_any(ReadOnlyReplica { op });
        }
    }

    /// The endpoint's mutation epoch, a seqlock-style counter:
    ///
    /// - **even** — the store is at rest; the value identifies its
    ///   current generation.
    /// - **odd** — a write is in flight (its [`MutationScope`] is open).
    ///
    /// Every content-changing write acknowledged through the endpoint's
    /// write methods ([`update`](Self::update),
    /// [`insert_triples`](Self::insert_triples) and friends,
    /// [`insert_quads`](Self::insert_quads),
    /// [`remove_triples`](Self::remove_triples),
    /// [`import`](Self::import), [`clear`](Self::clear)) advances the
    /// counter by exactly one generation (+2: odd at begin, next even at
    /// commit). No-op writes (idempotent republishes, removals of absent
    /// triples) restore the pre-write value, so an unchanged even epoch
    /// means unchanged store contents.
    ///
    /// The begin-*before*, commit-*after* discipline is what serving
    /// caches rely on: a result computed between two equal **even** loads
    /// provably overlapped no write, and a cached entry stamped with even
    /// epoch `E` is current exactly while the counter still reads `E` —
    /// there is no instant at which data has changed but the counter has
    /// not. Raw [`with_store_mut`](Self::with_store_mut) access bypasses
    /// the counter; callers mutating through it must wrap the mutation
    /// (including any derived-index updates) in a
    /// [`mutation_scope`](Self::mutation_scope), as the knowledge base's
    /// mutators do.
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Open a [`MutationScope`]: serialize against other writers and move
    /// the epoch odd. Apply the mutation while the scope is alive, then
    /// [`commit`](MutationScope::commit) with whether anything changed.
    /// Re-entrant use from one thread deadlocks — compose raw
    /// (scope-free) operations inside a single scope instead.
    pub fn mutation_scope(&self) -> MutationScope<'_> {
        let serial = self.write_serial.lock();
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        MutationScope {
            epoch: &self.epoch,
            _serial: serial,
            committed: false,
        }
    }

    /// The sharded backend, when this endpoint has one.
    pub fn sharded(&self) -> Option<&ShardedStore> {
        match &*self.store {
            Backing::Single(_) => None,
            Backing::Sharded(s) => Some(s),
        }
    }

    /// Per-shard triple/graph counts (`None` over a non-sharded backend).
    pub fn shard_stats(&self) -> Option<Vec<ShardStats>> {
        self.sharded().map(ShardedStore::shard_stats)
    }

    /// Checkpoint the backend ([`TripleStore::compact`]): a no-op for the
    /// in-memory stores, a snapshot-write-plus-log-rotation for a durable
    /// one — fanned out across shard directories on a sharded backend.
    /// Serializes with updates.
    pub fn compact(&self) -> std::io::Result<()> {
        match &*self.store {
            Backing::Single(lock) => lock.write().compact(),
            Backing::Sharded(s) => s.compact_all(),
        }
    }

    /// Install a background compaction policy: spawn a [`Compactor`]
    /// watcher thread that polls per-shard WAL pressure and folds shards
    /// off the write path (see [`crate::policy`] for thresholds,
    /// hysteresis and failure back-off). Replaces — stopping and joining —
    /// any previously installed compactor; the returned
    /// [`CompactorStats`] handle stays readable for the endpoint's
    /// lifetime. The thread is stopped and joined when the endpoint drops
    /// (or on [`stop_compactor`](Self::stop_compactor)).
    pub fn compaction_policy(&self, policy: CompactionPolicy) -> Arc<CompactorStats> {
        let target: Arc<dyn CompactionTarget> = Arc::clone(&self.store) as _;
        let compactor = Compactor::spawn(target, policy);
        let stats = compactor.stats();
        *self.compactor.lock() = Some(compactor);
        stats
    }

    /// Counters of the installed background compactor (`None` when no
    /// [`compaction_policy`](Self::compaction_policy) is installed).
    pub fn compactor_stats(&self) -> Option<Arc<CompactorStats>> {
        self.compactor.lock().as_ref().map(Compactor::stats)
    }

    /// Stop the background compactor, joining its watcher thread; a
    /// no-op when none is installed.
    pub fn stop_compactor(&self) {
        *self.compactor.lock() = None;
    }

    /// Per-shard WAL pressure of the backing (one entry for a single
    /// backend) — what the background compactor watches; exposed so
    /// callers and tests can observe it through the endpoint too.
    pub fn storage_pressures(&self) -> Vec<StoragePressure> {
        self.store.storage_pressures()
    }

    /// Execute a SPARQL `SELECT` from text.
    pub fn query(&self, text: &str) -> Result<ResultSet, ServerError> {
        let q = parse_select(text)?;
        Ok(self.query_parsed(&q))
    }

    /// Execute a pre-parsed `SELECT` (the matching engine caches parsed
    /// queries across the workload).
    pub fn query_parsed(&self, query: &SelectQuery) -> ResultSet {
        self.with_store(|st| evaluate(st, query))
    }

    /// Evaluate a batch of compiled probes under **one** read session —
    /// the matching engine submits all of a plan's segment probes in one
    /// call instead of re-acquiring the lock per segment. Before
    /// evaluating, each probe's constants (ground pattern terms,
    /// predicate IRIs, and pre-bindings) are resolved through the store's
    /// interner; a probe with any unresolved constant is answered with an
    /// empty result set without touching the indexes.
    ///
    /// Large batches are fanned out over `available_parallelism` worker
    /// threads sharing the session (read locks are shared, so workers
    /// evaluate concurrently); per-probe results are identical to the
    /// sequential path and returned in submission order.
    pub fn probe_batch(&self, probes: &[Probe<'_>]) -> Vec<ResultSet> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.probe_batch_threads(probes, threads)
    }

    /// [`probe_batch`](Self::probe_batch) with an explicit worker count
    /// (the shard bench pins it; `1` forces the sequential path).
    pub fn probe_batch_threads(&self, probes: &[Probe<'_>], threads: usize) -> Vec<ResultSet> {
        match &*self.store {
            Backing::Single(lock) => {
                let guard = lock.read();
                run_probes_parallel(guard.as_ref(), probes, threads)
            }
            Backing::Sharded(s) => {
                let session = s.read_session();
                let view = session.view();
                run_probes_parallel(&view, probes, threads)
            }
        }
    }

    /// Execute a SPARQL update from text; returns affected triple count.
    pub fn update(&self, text: &str) -> Result<usize, ServerError> {
        self.write_guard("update")?;
        let u = parse_update(text)?;
        let scope = self.mutation_scope();
        let n = self.with_store_mut(|st| {
            st.begin_batch();
            let n = apply_update(st, &u);
            st.end_batch();
            n
        });
        scope.commit(n > 0);
        Ok(n)
    }

    /// Insert a batch of triples in one write transaction. On a durable
    /// backend the whole batch group-commits (one journal flush); on a
    /// sharded backend only the shards the batch routes to are locked,
    /// so concurrent batches bound for different shards proceed in
    /// parallel.
    pub fn insert_triples(&self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        self.assert_writable("insert_triples");
        let scope = self.mutation_scope();
        let n = match &*self.store {
            Backing::Single(lock) => {
                let mut store = lock.write();
                store.begin_batch();
                let n = triples
                    .into_iter()
                    .filter(|(s, p, o)| store.insert(s.clone(), p.clone(), o.clone()))
                    .count();
                store.end_batch();
                n
            }
            Backing::Sharded(s) => s.insert_terms_batch(triples),
        };
        scope.commit(n > 0);
        n
    }

    /// Insert a batch of triples into a named graph in one transaction
    /// (same batching and shard-routing behavior as
    /// [`insert_triples`](Self::insert_triples)).
    pub fn insert_triples_in(
        &self,
        graph: Term,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> usize {
        self.assert_writable("insert_triples_in");
        let scope = self.mutation_scope();
        let n = match &*self.store {
            Backing::Single(lock) => {
                let mut store = lock.write();
                store.begin_batch();
                let g = store.intern(graph);
                let n = triples
                    .into_iter()
                    .filter(|(s, p, o)| {
                        let t = (
                            store.intern(s.clone()),
                            store.intern(p.clone()),
                            store.intern(o.clone()),
                        );
                        store.insert_ids_in(g, t)
                    })
                    .count();
                store.end_batch();
                n
            }
            Backing::Sharded(s) => s.insert_terms_batch_in(graph, triples),
        };
        scope.commit(n > 0);
        n
    }

    /// Append a mixed batch of default-graph triples (`graph: None`) and
    /// named-graph tags (`graph: Some(g)`) in **one** write transaction —
    /// the batch-publish endpoint distributed learner machines push their
    /// mined templates through. On a durable backend the whole batch
    /// group-commits; on a sharded backend each quad routes by subject,
    /// so a template's triples and its workload-dataset tag land
    /// write-local on one shard and only the routed shards are locked.
    /// Returns how many quads were new.
    pub fn insert_quads(&self, quads: impl IntoIterator<Item = crate::ntriples::Quad>) -> usize {
        self.assert_writable("insert_quads");
        let scope = self.mutation_scope();
        let n = self.insert_quads_raw(quads);
        scope.commit(n > 0);
        n
    }

    /// [`insert_quads`](Self::insert_quads) without its own
    /// [`mutation_scope`](Self::mutation_scope): for callers composing a
    /// larger logical change (store write *plus* derived-index updates)
    /// under one scope they opened themselves — the knowledge base's
    /// batch publish does. Calling this outside a scope leaves the epoch
    /// behind the data; don't.
    pub fn insert_quads_raw(
        &self,
        quads: impl IntoIterator<Item = crate::ntriples::Quad>,
    ) -> usize {
        self.assert_writable("insert_quads_raw");
        match &*self.store {
            Backing::Single(lock) => {
                let mut store = lock.write();
                store.begin_batch();
                let n = quads
                    .into_iter()
                    .filter(|(s, p, o, graph)| match graph {
                        Some(g) => store.insert_in(g.clone(), s.clone(), p.clone(), o.clone()),
                        None => store.insert(s.clone(), p.clone(), o.clone()),
                    })
                    .count();
                store.end_batch();
                n
            }
            Backing::Sharded(s) => s.insert_quads_batch(quads),
        }
    }

    /// Remove a batch of triples in one write transaction; returns how
    /// many were present. Batched like
    /// [`insert_triples`](Self::insert_triples).
    pub fn remove_triples(&self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> usize {
        self.assert_writable("remove_triples");
        let scope = self.mutation_scope();
        let n = match &*self.store {
            Backing::Single(lock) => {
                let mut store = lock.write();
                store.begin_batch();
                let n = triples
                    .into_iter()
                    .filter(|(s, p, o)| store.remove(s, p, o))
                    .count();
                store.end_batch();
                n
            }
            Backing::Sharded(s) => s.remove_terms_batch(triples),
        };
        scope.commit(n > 0);
        n
    }

    /// Names of the dataset's non-empty named graphs.
    pub fn graph_names(&self) -> Vec<Term> {
        self.with_store(|st| st.graph_names())
    }

    /// Run a closure with read access to the store (bulk extraction). On
    /// a sharded backend this is an all-shard read session: a stable
    /// view for the closure's lifetime.
    pub fn with_store<T>(&self, f: impl FnOnce(&dyn TripleStore) -> T) -> T {
        match &*self.store {
            Backing::Single(lock) => f(lock.read().as_ref()),
            Backing::Sharded(s) => {
                let session = s.read_session();
                f(&session.view())
            }
        }
    }

    /// Run a closure with exclusive write access (a write transaction;
    /// an all-shard write session on a sharded backend). Raw access does
    /// **not** advance the [`mutation_epoch`](Self::mutation_epoch) —
    /// callers that mutate through it must hold a
    /// [`mutation_scope`](Self::mutation_scope) spanning their whole
    /// logical change (including any derived index) and commit it once
    /// fully applied, as the knowledge base's mutators do.
    pub fn with_store_mut<T>(&self, f: impl FnOnce(&mut dyn TripleStore) -> T) -> T {
        match &*self.store {
            Backing::Single(lock) => f(lock.write().as_mut()),
            Backing::Sharded(s) => {
                let mut session = s.write_session();
                f(&mut session.view_mut())
            }
        }
    }

    /// Number of triples currently stored.
    pub fn len(&self) -> usize {
        self.with_store(|st| st.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the dataset as N-Triples.
    pub fn export(&self) -> String {
        self.with_store(|st| to_ntriples(st))
    }

    /// Replace the dataset from N-Triples / N-Quads text (quad lines
    /// restore named graphs). The text is fully parsed before the current
    /// contents are dropped, so a malformed import leaves the dataset
    /// untouched — and the backend is preserved. Returns the number of
    /// default-graph triples imported.
    pub fn import(&self, text: &str) -> Result<usize, ServerError> {
        self.write_guard("import")?;
        let triples = parse_ntriples(text)?;
        let scope = self.mutation_scope();
        let n = self.with_store_mut(|store| {
            store.clear();
            store.begin_batch();
            let mut n = 0;
            for (s, p, o, graph) in triples {
                match graph {
                    Some(g) => {
                        store.insert_in(g, s, p, o);
                    }
                    None => {
                        if store.insert(s, p, o) {
                            n += 1;
                        }
                    }
                }
            }
            store.end_batch();
            n
        });
        // A replace-all is one logical change even when the imported text
        // reproduces the previous contents byte-for-byte: the clear makes
        // the old state unobservable, so conservatively invalidate.
        scope.commit(true);
        Ok(n)
    }

    /// Drop every triple and named graph — one write transaction, one
    /// epoch generation.
    pub fn clear(&self) {
        self.assert_writable("clear");
        let scope = self.mutation_scope();
        self.with_store_mut(|store| store.clear());
        scope.commit(true);
    }
}

/// Sequentially evaluate a probe run against one store view, sharing a
/// prepared plan across consecutive probes over the same query and seed
/// variables (the common case: one probe per candidate template of one
/// segment) — pattern ordering and filter scheduling are paid once per
/// segment, not per candidate.
fn run_probes(store: &dyn TripleStore, probes: &[Probe<'_>]) -> Vec<ResultSet> {
    struct Cached<'q> {
        query_ptr: *const SelectQuery,
        seed_vars: Vec<String>,
        /// `None` when a ground constant of the query was never
        /// interned: every evaluation is empty, so the query is not
        /// even prepared — only its projection is kept.
        prepared: Option<PreparedQuery<'q>>,
        projected: Vec<String>,
    }
    let mut cached: Option<Cached<'_>> = None;
    probes
        .iter()
        .map(|probe| {
            let reusable = cached.as_ref().is_some_and(|c| {
                std::ptr::eq(c.query_ptr, probe.query)
                    && c.seed_vars.len() == probe.bind.len()
                    && c.seed_vars
                        .iter()
                        .zip(&probe.bind)
                        .all(|(v, (bv, _))| v == bv)
            });
            if !reusable {
                let seed_vars: Vec<String> = probe.bind.iter().map(|(v, _)| v.clone()).collect();
                cached = Some(Cached {
                    query_ptr: probe.query,
                    prepared: constants_interned(store, probe.query)
                        .then(|| prepare_seeded(store, probe.query, &seed_vars)),
                    projected: projected_vars(probe.query),
                    seed_vars,
                });
            }
            let cache = cached.as_ref().expect("prepared above");
            let empty = || ResultSet {
                vars: cache.projected.clone(),
                rows: Vec::new(),
            };
            let Some(prepared) = &cache.prepared else {
                return empty();
            };
            let mut seed_ids: Vec<TermId> = Vec::with_capacity(probe.bind.len());
            for (_, term) in &probe.bind {
                match store.term_id(term) {
                    Some(id) => seed_ids.push(id),
                    None => return empty(),
                }
            }
            evaluate_prepared(store, prepared, &seed_ids)
        })
        .collect()
}

/// Minimum batch size worth paying thread spawns for.
const PARALLEL_PROBE_THRESHOLD: usize = 8;

/// Fan a probe batch out over scoped worker threads sharing one store
/// view; falls back to the sequential path for small batches or a single
/// worker. Chunks are contiguous so the per-chunk prepared-plan cache
/// keeps its hit rate, and results come back in submission order.
fn run_probes_parallel(
    store: &dyn TripleStore,
    probes: &[Probe<'_>],
    threads: usize,
) -> Vec<ResultSet> {
    let threads = threads.min(probes.len()).max(1);
    if threads <= 1 || probes.len() < PARALLEL_PROBE_THRESHOLD {
        return run_probes(store, probes);
    }
    let chunk = probes.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = probes
            .chunks(chunk)
            .map(|chunk| scope.spawn(move || run_probes(store, chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("probe worker must not panic"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seeded() -> FusekiLite {
        let f = FusekiLite::new();
        f.insert_triples((0..50u32).map(|i| {
            (
                Term::iri(format!("http://galo/qep/pop/{i}")),
                Term::iri("http://galo/qep/property/hasEstimateCardinality"),
                Term::lit(format!("{}", i * 100)),
            )
        }));
        f
    }

    #[test]
    fn query_text_endpoint() {
        let f = seeded();
        let rs = f
            .query(
                "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
                 FILTER(?c >= 4800) }",
            )
            .unwrap();
        assert_eq!(rs.len(), 2); // 4800, 4900.
    }

    #[test]
    fn update_text_endpoint() {
        let f = seeded();
        let n = f
            .update("INSERT DATA { <http://x> <http://p> \"1\" . <http://y> <http://p> \"2\" . }")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(f.len(), 52);
        let removed = f.update("DELETE WHERE { ?s <http://p> ?o . }").unwrap();
        assert_eq!(removed, 2);
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn export_import_roundtrip() {
        let f = seeded();
        let text = f.export();
        let g = FusekiLite::new();
        assert_eq!(g.import(&text).unwrap(), 50);
        assert_eq!(g.len(), 50);
    }

    #[test]
    fn export_import_preserves_named_graphs() {
        let f = seeded();
        let g1 = Term::iri("http://galo/kb/graph/workload/tpcds");
        f.insert_triples_in(
            g1.clone(),
            [
                (
                    Term::iri("http://t/1"),
                    Term::iri("http://p"),
                    Term::lit("a"),
                ),
                (
                    Term::iri("http://t/2"),
                    Term::iri("http://p"),
                    Term::lit("b"),
                ),
            ],
        );
        let text = f.export();
        let g = FusekiLite::new();
        assert_eq!(g.import(&text).unwrap(), 50); // default-graph triples only
        assert_eq!(g.len(), 50);
        assert_eq!(g.graph_names(), vec![g1.clone()]);
        let names = g.with_store(|st| {
            let gid = st.term_id(&g1).expect("graph interned");
            st.scan_in(gid, None, None, None).len()
        });
        assert_eq!(names, 2);
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let f = Arc::new(seeded());
        let mut handles = Vec::new();
        for t in 0..4 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    if t == 0 && i % 5 == 0 {
                        f.insert_triples([(
                            Term::iri(format!("http://w/{i}")),
                            Term::iri("http://p"),
                            Term::lit("x"),
                        )]);
                    } else {
                        let rs = f
                            .query(
                                "SELECT ?s WHERE { ?s \
                                 <http://galo/qep/property/hasEstimateCardinality> ?c . }",
                            )
                            .unwrap();
                        assert!(rs.len() >= 50);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 54);
    }

    #[test]
    fn probe_batch_matches_per_query_evaluation() {
        let f = seeded();
        let q1 = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
             FILTER(?c >= 4800) }",
        )
        .unwrap();
        let q2 = parse_select(
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> \"100\" . }",
        )
        .unwrap();
        let jobs = vec![
            Probe {
                query: &q1,
                bind: vec![],
            },
            Probe {
                query: &q2,
                bind: vec![],
            },
        ];
        let batched = f.probe_batch(&jobs);
        assert_eq!(batched.len(), 2);
        assert_eq!(batched[0], f.query_parsed(&q1));
        assert_eq!(batched[1], f.query_parsed(&q2));
        assert_eq!(batched[0].len(), 2);
        assert_eq!(batched[1].len(), 1);
    }

    #[test]
    fn probe_bindings_restrict_solutions() {
        let f = seeded();
        let q = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
        )
        .unwrap();
        let jobs = vec![Probe {
            query: &q,
            bind: vec![("s".to_string(), Term::iri("http://galo/qep/pop/7"))],
        }];
        let rs = f.probe_batch(&jobs).remove(0);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "s").unwrap().str_value(), "http://galo/qep/pop/7");
        assert_eq!(rs.get(0, "c").unwrap().str_value(), "700");
    }

    #[test]
    fn probe_with_unresolved_constant_is_empty_without_eval() {
        let f = seeded();
        // Ground object never interned -> empty, projection preserved.
        let q = parse_select(
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> \"nope\" . }",
        )
        .unwrap();
        // Pre-binding to a never-interned IRI -> empty as well.
        let q2 = parse_select(
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
        )
        .unwrap();
        let jobs = vec![
            Probe {
                query: &q,
                bind: vec![],
            },
            Probe {
                query: &q2,
                bind: vec![("s".to_string(), Term::iri("http://nowhere"))],
            },
        ];
        let out = f.probe_batch(&jobs);
        assert!(out[0].is_empty());
        assert_eq!(out[0].vars, vec!["s"]);
        assert!(out[1].is_empty());
        assert_eq!(out[1].vars, vec!["s", "c"]);
    }

    #[test]
    fn mutation_epoch_advances_once_per_logical_change() {
        // One generation = +2: the seqlock protocol passes through an odd
        // in-flight value and lands on the next even one. At rest the
        // counter is always even.
        const GEN: u64 = 2;
        for f in [FusekiLite::new(), FusekiLite::open_sharded(4)] {
            let e0 = f.mutation_epoch();
            assert_eq!(e0 % 2, 0, "epoch must be even at rest");
            // A content-changing insert advances exactly one generation.
            let t = (Term::iri("http://s"), Term::iri("http://p"), Term::lit("1"));
            assert_eq!(f.insert_triples([t.clone()]), 1);
            assert_eq!(f.mutation_epoch(), e0 + GEN);
            // An idempotent re-insert is a no-op: no advance.
            assert_eq!(f.insert_triples([t.clone()]), 0);
            assert_eq!(f.mutation_epoch(), e0 + GEN);
            // Removal of a present triple advances; of an absent one
            // doesn't.
            assert_eq!(f.remove_triples([t.clone()]), 1);
            assert_eq!(f.mutation_epoch(), e0 + 2 * GEN);
            assert_eq!(f.remove_triples([t.clone()]), 0);
            assert_eq!(f.mutation_epoch(), e0 + 2 * GEN);
            // SPARQL updates advance only when they change anything.
            f.update("INSERT DATA { <http://x> <http://p> \"v\" . }")
                .unwrap();
            assert_eq!(f.mutation_epoch(), e0 + 3 * GEN);
            f.update("DELETE WHERE { ?s <http://nope> ?o . }").unwrap();
            assert_eq!(f.mutation_epoch(), e0 + 3 * GEN);
            // Named-graph and quad writes advance; idempotent replays
            // don't.
            let g = Term::iri("http://galo/kb/graph/workload/w");
            let tag = (Term::iri("http://t"), Term::iri("http://p"), Term::lit("t"));
            assert_eq!(f.insert_triples_in(g.clone(), [tag.clone()]), 1);
            assert_eq!(f.mutation_epoch(), e0 + 4 * GEN);
            assert_eq!(f.insert_triples_in(g.clone(), [tag.clone()]), 0);
            assert_eq!(f.mutation_epoch(), e0 + 4 * GEN);
            // import is always one logical change; clear too. Reads never
            // advance.
            let dump = f.export();
            f.import(&dump).unwrap();
            assert_eq!(f.mutation_epoch(), e0 + 5 * GEN);
            let _ = f.query("SELECT ?s WHERE { ?s <http://p> ?o . }");
            let _ = f.len();
            assert_eq!(f.mutation_epoch(), e0 + 5 * GEN);
            f.clear();
            assert_eq!(f.mutation_epoch(), e0 + 6 * GEN);
            assert!(f.is_empty());
            // A scope abandoned without commit (panic path) still lands
            // even and invalidates conservatively.
            drop(f.mutation_scope());
            assert_eq!(f.mutation_epoch(), e0 + 7 * GEN);
            // A committed no-op scope restores the exact pre-scope value.
            f.mutation_scope().commit(false);
            assert_eq!(f.mutation_epoch(), e0 + 7 * GEN);
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        let f = seeded();
        assert!(f.query("SELEKT ?x WHERE { }").is_err());
        assert!(f.update("UPSERT DATA {}").is_err());
    }

    fn seeded_sharded(shards: usize) -> FusekiLite {
        let f = FusekiLite::open_sharded(shards);
        f.insert_triples((0..50u32).map(|i| {
            (
                Term::iri(format!("http://galo/qep/pop/{i}")),
                Term::iri("http://galo/qep/property/hasEstimateCardinality"),
                Term::lit(format!("{}", i * 100)),
            )
        }));
        f
    }

    #[test]
    fn sharded_endpoint_serves_the_same_queries() {
        let single = seeded();
        let sharded = seeded_sharded(4);
        assert_eq!(sharded.len(), 50);
        assert!(sharded.sharded().is_some() && single.sharded().is_none());
        let stats = sharded.shard_stats().expect("sharded backend");
        assert_eq!(stats.iter().map(|s| s.triples).sum::<usize>(), 50);
        for q in [
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . \
             FILTER(?c >= 4800) }",
            "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
        ] {
            assert_eq!(
                sharded.query(q).unwrap().len(),
                single.query(q).unwrap().len()
            );
        }
        // Update + import/export flow through the write session.
        let n = sharded
            .update("INSERT DATA { <http://x> <http://p> \"1\" . }")
            .unwrap();
        assert_eq!(n, 1);
        let dump = sharded.export();
        let back = FusekiLite::open_sharded(3);
        assert_eq!(back.import(&dump).unwrap(), 51);
        assert_eq!(back.len(), 51);
        // remove_triples routes to the owning shards.
        let removed =
            back.remove_triples([(Term::iri("http://x"), Term::iri("http://p"), Term::lit("1"))]);
        assert_eq!(removed, 1);
        assert_eq!(back.len(), 50);
    }

    #[test]
    fn parallel_probe_batch_matches_sequential() {
        for f in [seeded(), seeded_sharded(4)] {
            let q = parse_select(
                "SELECT ?s ?c WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> ?c . }",
            )
            .unwrap();
            let jobs: Vec<Probe<'_>> = (0..40u32)
                .map(|i| Probe {
                    query: &q,
                    bind: vec![(
                        "s".to_string(),
                        Term::iri(format!("http://galo/qep/pop/{}", i % 50)),
                    )],
                })
                .collect();
            let sequential = f.probe_batch_threads(&jobs, 1);
            let parallel = f.probe_batch_threads(&jobs, 3);
            assert_eq!(sequential, parallel);
            for (i, rs) in parallel.iter().enumerate() {
                assert_eq!(rs.len(), 1);
                assert_eq!(
                    rs.get(0, "c").unwrap().str_value(),
                    format!("{}", (i % 50) * 100)
                );
            }
        }
    }

    #[test]
    fn insert_quads_lands_default_and_named_graph_triples() {
        for f in [FusekiLite::new(), FusekiLite::open_sharded(4)] {
            let g = Term::iri("http://galo/kb/graph/workload/w1");
            let n = f.insert_quads((0..10u32).flat_map(|i| {
                let s = Term::iri(format!("http://galo/kb/template/{i:016x}"));
                [
                    (
                        s.clone(),
                        Term::iri("http://p/x"),
                        Term::lit(format!("{i}")),
                        None,
                    ),
                    (
                        s,
                        Term::iri("http://p/tag"),
                        Term::lit("t"),
                        Some(g.clone()),
                    ),
                ]
            }));
            assert_eq!(n, 20, "10 default-graph triples + 10 tags are new");
            assert_eq!(f.len(), 10);
            assert_eq!(f.graph_names(), vec![g.clone()]);
            let tags = f.with_store(|st| {
                let gid = st.term_id(&g).expect("graph interned");
                st.scan_in(gid, None, None, None).len()
            });
            assert_eq!(tags, 10);
            // Re-publishing the same quads is idempotent (set semantics).
            let again = f.insert_quads([(
                Term::iri("http://galo/kb/template/0000000000000000"),
                Term::iri("http://p/x"),
                Term::lit("0"),
                None,
            )]);
            assert_eq!(again, 0);
            if let Some(stats) = f.shard_stats() {
                assert_eq!(stats.iter().map(|s| s.triples).sum::<usize>(), 10);
                assert_eq!(stats.iter().map(|s| s.graph_triples).sum::<usize>(), 10);
                // Template-affine routing: a template's triple and its
                // tag live on the same shard, so any shard holding tags
                // also holds that many template triples at least.
                for s in &stats {
                    assert!(s.graph_triples <= s.triples, "{s:?}");
                }
            }
        }
    }

    #[test]
    fn sharded_concurrent_writers_with_readers() {
        // Writers whose batches route to different shards proceed without
        // a global write lock; readers see consistent sessions. The final
        // image must contain every write (no lost updates).
        let f = Arc::new(FusekiLite::open_sharded(4));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for i in 0..20u32 {
                    f.insert_triples([(
                        Term::iri(format!("http://galo/kb/template/{:08x}", w * 100 + i)),
                        Term::iri("http://p"),
                        Term::lit(format!("{w}:{i}")),
                    )]);
                }
            }));
        }
        for _ in 0..2 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let rs = f.query("SELECT ?s WHERE { ?s <http://p> ?o . }").unwrap();
                    assert!(rs.len() <= 80);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 80, "all concurrent writes must land");
        let stats = f.shard_stats().unwrap();
        assert!(
            stats.iter().filter(|s| s.triples > 0).count() > 1,
            "writes must actually spread over shards: {stats:?}"
        );
    }

    /// Spin until `cond` holds or ~10 s pass (single-CPU CI is slow).
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        cond()
    }

    fn test_policy() -> CompactionPolicy {
        CompactionPolicy {
            wal_records: 32,
            wal_bytes: u64::MAX,
            idle_divisor: 0,
            min_interval: std::time::Duration::from_millis(1),
            poll_interval: std::time::Duration::from_millis(1),
            ..CompactionPolicy::default()
        }
    }

    #[test]
    fn background_compaction_policy_folds_a_sharded_backing() {
        let dir = crate::persist::ScratchDir::new("server-policy-sharded");
        {
            let f = FusekiLite::open_sharded_durable(dir.path(), 2).unwrap();
            let stats = f.compaction_policy(test_policy());
            f.insert_triples((0..200u32).map(|i| {
                (
                    Term::iri(format!("http://galo/kb/template/{i:08x}")),
                    Term::iri("http://p"),
                    Term::lit(format!("{i}")),
                )
            }));
            assert!(
                eventually(|| stats.compacted() >= 1),
                "the background thread must fold the hot shards: {stats:?}"
            );
            assert!(eventually(|| {
                f.storage_pressures().iter().all(|p| p.wal_records < 32)
            }));
            assert_eq!(stats.failed(), 0);
            assert!(f.compactor_stats().is_some());
            f.stop_compactor();
            assert!(f.compactor_stats().is_none());
            assert_eq!(f.len(), 200, "compaction never loses content");
        }
        // Folded image survives reopen.
        let g = FusekiLite::open_sharded_durable(dir.path(), 2).unwrap();
        assert_eq!(g.len(), 200);
    }

    #[test]
    fn background_compaction_policy_treats_single_backing_as_one_shard() {
        let dir = crate::persist::ScratchDir::new("server-policy-single");
        let f = FusekiLite::open_durable(dir.path()).unwrap();
        let stats = f.compaction_policy(test_policy());
        f.insert_triples((0..100u32).map(|i| {
            (
                Term::iri(format!("http://s/{i}")),
                Term::iri("http://p"),
                Term::lit(format!("{i}")),
            )
        }));
        assert!(eventually(|| stats.compacted() >= 1));
        let pressures = f.storage_pressures();
        assert_eq!(pressures.len(), 1, "single backing is one shard");
        assert!(eventually(|| f.storage_pressures()[0].wal_records < 32));
        assert_eq!(f.len(), 100);
        // Dropping the endpoint joins the watcher thread (no panic, no
        // hang); content is intact on reopen.
        drop(f);
        let g = FusekiLite::open_durable(dir.path()).unwrap();
        assert_eq!(g.len(), 100);
    }

    #[test]
    fn in_memory_backing_reports_zero_pressure_and_never_folds() {
        let f = seeded();
        let stats = f.compaction_policy(test_policy());
        assert_eq!(f.storage_pressures(), vec![StoragePressure::default()]);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(stats.triggered(), 0);
    }
}
