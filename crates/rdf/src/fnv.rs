//! FNV-1a 64: the crate's one deterministic hash.
//!
//! Used for snapshot and WAL-record checksums ([`crate::persist`]) and
//! for shard routing, interner striping and the hot-path id maps
//! ([`crate::shard`]) — all places that need a hash that is stable
//! across process runs (`std`'s default hasher is seeded) and cheap on
//! short inputs.

/// The FNV-1a 64 offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into a running FNV-1a state (seed with [`FNV_OFFSET`]).
pub(crate) fn fnv1a_with(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64 of one byte slice.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(FNV_OFFSET, bytes)
}
