//! RDF terms and interning.
//!
//! The knowledge base holds millions of triples during routinization runs
//! (Exp-4: 1,000 problem patterns), so terms are interned once into
//! [`TermId`]s and triples are stored as integer tuples.

use std::collections::HashMap;
use std::fmt;

/// An RDF term: IRI, literal, or blank node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(String),
    Literal(Literal),
    Blank(String),
}

/// A literal with its lexical form. The numeric interpretation is computed
/// once at construction, since FILTER comparisons in the matching engine
/// are the hot path.
#[derive(Debug, Clone)]
pub struct Literal {
    pub lexical: String,
    numeric: Option<f64>,
}

impl Literal {
    pub fn new(lexical: impl Into<String>) -> Self {
        let lexical = lexical.into();
        let numeric = lexical.trim().parse::<f64>().ok();
        Literal { lexical, numeric }
    }

    /// Numeric value when the lexical form parses as a number (SPARQL's
    /// numeric coercion, restricted to doubles).
    pub fn as_number(&self) -> Option<f64> {
        self.numeric
    }
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        self.lexical == other.lexical
    }
}
impl Eq for Literal {}
impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lexical.hash(state);
    }
}
impl PartialOrd for Literal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Literal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lexical.cmp(&other.lexical)
    }
}

impl Term {
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    pub fn lit(s: impl Into<String>) -> Term {
        Term::Literal(Literal::new(s))
    }

    pub fn num(n: f64) -> Term {
        // Integral values serialize without the trailing `.0`, matching the
        // paper's examples ("2949250").
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            Term::Literal(Literal::new(format!("{}", n as i64)))
        } else {
            Term::Literal(Literal::new(format!("{n}")))
        }
    }

    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// SPARQL `STR()`: the lexical form for literals, the IRI text for
    /// IRIs, the label for blank nodes.
    pub fn str_value(&self) -> &str {
        match self {
            Term::Iri(s) => s,
            Term::Literal(l) => &l.lexical,
            Term::Blank(b) => b,
        }
    }
}

impl fmt::Display for Term {
    /// N-Triples surface form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(l) => write!(
                f,
                "\"{}\"",
                l.lexical
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
                    .replace('\t', "\\t")
            ),
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Interned term identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Term interner: bidirectional map between [`Term`]s and [`TermId`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    map: HashMap<Term, TermId>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (stable for the lifetime of the
    /// interner).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.map.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.map.insert(term, id);
        id
    }

    /// Look up a term's id without interning.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// Resolve an id back to its term.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern(Term::iri("http://galo/qep/pop/2"));
        let b = i.intern(Term::iri("http://galo/qep/pop/2"));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(a).as_iri(), Some("http://galo/qep/pop/2"));
    }

    #[test]
    fn literal_numeric_interpretation() {
        assert_eq!(Literal::new("2949250").as_number(), Some(2949250.0));
        assert_eq!(Literal::new("13.1688").as_number(), Some(13.1688));
        assert_eq!(Literal::new("1.441e+06").as_number(), Some(1_441_000.0));
        assert_eq!(Literal::new("NLJOIN").as_number(), None);
    }

    #[test]
    fn num_formats_integers_without_fraction() {
        assert_eq!(Term::num(2949250.0).str_value(), "2949250");
        assert_eq!(Term::num(13.1688).str_value(), "13.1688");
    }

    #[test]
    fn literal_equality_is_lexical() {
        // "1.0" and "1" are numerically equal but lexically distinct terms.
        assert_ne!(Term::lit("1.0"), Term::lit("1"));
        assert_eq!(Term::lit("HSJOIN"), Term::lit("HSJOIN"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/y").to_string(), "<http://x/y>");
        assert_eq!(Term::lit("a \"b\"").to_string(), "\"a \\\"b\\\"\"");
        assert_eq!(Term::Blank("b0".into()).to_string(), "_:b0");
    }

    #[test]
    fn str_value_matches_sparql_str_semantics() {
        assert_eq!(Term::iri("http://x").str_value(), "http://x");
        assert_eq!(Term::lit("42").str_value(), "42");
    }
}
