//! Property-based tests for the RDF substrate: store index consistency,
//! N-Triples round-trips and SPARQL evaluation invariants.

use proptest::prelude::*;

use crate::ntriples::{from_ntriples, to_ntriples};
use crate::sparql::{evaluate, parse_select};
use crate::store::{IndexedStore, ScanStore, TripleStore};
use crate::term::Term;

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,6}(/[a-z0-9]{1,4}){0,2}".prop_map(|p| Term::iri(format!("http://t/{p}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Printable text including characters that need escaping.
        "[ -~]{0,12}".prop_map(Term::lit),
        any::<i32>().prop_map(|n| Term::lit(n.to_string())),
        (any::<f32>().prop_filter("finite", |f| f.is_finite()))
            .prop_map(|f| Term::lit(format!("{f}"))),
    ]
}

fn arb_triple() -> impl Strategy<Value = (Term, Term, Term)> {
    (arb_iri(), arb_iri(), prop_oneof![arb_iri(), arb_literal()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/remove keeps all three indexes consistent; scans agree.
    #[test]
    fn store_indexes_stay_consistent(
        triples in prop::collection::vec(arb_triple(), 1..40),
        remove_mask in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        for ((s, p, o), rm) in triples.iter().zip(remove_mask.iter().cycle()) {
            if *rm {
                store.remove(s, p, o);
            }
        }
        // Every remaining triple is findable through all access patterns.
        let all: Vec<_> = store
            .iter_terms()
            .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
            .collect();
        prop_assert_eq!(all.len(), store.len());
        for (s, p, o) in &all {
            prop_assert!(store.contains(s, p, o));
            let (si, pi, oi) = (
                store.term_id(s).expect("interned"),
                store.term_id(p).expect("interned"),
                store.term_id(o).expect("interned"),
            );
            prop_assert_eq!(store.scan(Some(si), Some(pi), None).iter()
                .filter(|t| t.2 == oi).count(), 1);
            prop_assert_eq!(store.scan(None, Some(pi), Some(oi)).iter()
                .filter(|t| t.0 == si).count(), 1);
            prop_assert_eq!(store.scan(Some(si), None, Some(oi)).iter()
                .filter(|t| t.1 == pi).count(), 1);
        }
    }

    /// N-Triples serialization round-trips arbitrary stores.
    #[test]
    fn ntriples_roundtrip(triples in prop::collection::vec(arb_triple(), 0..30)) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let text = to_ntriples(&store);
        let back = from_ntriples(&text).expect("own output parses");
        prop_assert_eq!(back.len(), store.len());
        for (s, p, o) in store.iter_terms() {
            prop_assert!(back.contains(s, p, o), "lost {s} {p} {o}");
        }
    }

    /// A `SELECT ?s ?o WHERE {{ ?s <p> ?o }}` query returns exactly the
    /// triples stored under that predicate.
    #[test]
    fn bgp_single_pattern_is_exact(
        triples in prop::collection::vec(arb_triple(), 1..30),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let (_, pred, _) = &triples[pick.index(triples.len())];
        let expected = store
            .iter_terms()
            .filter(|(_, p, _)| *p == pred)
            .count();
        let q = parse_select(&format!(
            "SELECT ?s ?o WHERE {{ ?s <{}> ?o . }}",
            pred.str_value()
        ))
        .expect("query parses");
        let rs = evaluate(&store, &q);
        prop_assert_eq!(rs.len(), expected);
    }

    /// DISTINCT never increases the row count and is idempotent.
    #[test]
    fn distinct_is_contractive(triples in prop::collection::vec(arb_triple(), 1..30)) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let plain = evaluate(
            &store,
            &parse_select("SELECT ?p WHERE { ?s ?x ?o . }").unwrap_or_else(|_| parse_select("SELECT ?s WHERE { ?s <http://t/q> ?o . }").expect("parses")),
        );
        let _ = plain;
        // Use a concrete predicate from the data for a meaningful check.
        let pred = triples[0].1.str_value().to_string();
        let q1 = parse_select(&format!("SELECT ?s WHERE {{ ?s <{pred}> ?o . }}")).expect("q");
        let q2 =
            parse_select(&format!("SELECT DISTINCT ?s WHERE {{ ?s <{pred}> ?o . }}")).expect("q");
        let all = evaluate(&store, &q1);
        let distinct = evaluate(&store, &q2);
        prop_assert!(distinct.len() <= all.len());
        let rerun = evaluate(&store, &q2);
        prop_assert_eq!(distinct.len(), rerun.len());
    }

    /// Property-path `+` results equal the transitive closure computed by
    /// a reference BFS.
    #[test]
    fn plus_path_equals_reference_closure(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..25),
        start in 0u8..12,
    ) {
        let mut store = IndexedStore::new();
        let node = |n: u8| Term::iri(format!("http://n/{n}"));
        for (a, b) in &edges {
            store.insert(node(*a), Term::iri("http://p/next"), node(*b));
        }
        // Reference BFS.
        let mut reach = std::collections::BTreeSet::new();
        let mut queue = vec![start];
        let mut visited = std::collections::BTreeSet::new();
        while let Some(cur) = queue.pop() {
            if !visited.insert(cur) {
                continue;
            }
            for (a, b) in &edges {
                if *a == cur {
                    reach.insert(*b);
                    queue.push(*b);
                }
            }
        }
        let q = parse_select(&format!(
            "SELECT ?x WHERE {{ <http://n/{start}> <http://p/next>+ ?x . }}"
        ))
        .expect("q");
        let rs = evaluate(&store, &q);
        prop_assert_eq!(rs.len(), reach.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test of the backends: after the same churn, the
    /// indexed store answers every one of the eight triple patterns
    /// identically to the naive scan reference.
    #[test]
    fn indexed_store_matches_scan_reference(
        triples in prop::collection::vec(arb_triple(), 1..50),
        remove_mask in prop::collection::vec(any::<bool>(), 1..50),
        probe in any::<prop::sample::Index>(),
    ) {
        let mut indexed = IndexedStore::new();
        let mut reference = ScanStore::new();
        for (s, p, o) in &triples {
            indexed.insert(s.clone(), p.clone(), o.clone());
            reference.insert(s.clone(), p.clone(), o.clone());
        }
        for ((s, p, o), rm) in triples.iter().zip(remove_mask.iter().cycle()) {
            if *rm {
                indexed.remove(s, p, o);
                reference.remove(s, p, o);
            }
        }
        prop_assert_eq!(indexed.len(), reference.len());

        // Interning orders agree (same insertion sequence), so ids are
        // directly comparable across the two stores.
        let (s, p, o) = &triples[probe.index(triples.len())];
        let ids = |st: &dyn TripleStore| {
            (st.term_id(s), st.term_id(p), st.term_id(o))
        };
        prop_assert_eq!(ids(&indexed), ids(&reference));
        let (si, pi, oi) = ids(&indexed);

        // All eight access patterns over a probe triple's components.
        for s_pat in [None, si] {
            for p_pat in [None, pi] {
                for o_pat in [None, oi] {
                    let got = indexed.scan(s_pat, p_pat, o_pat);
                    let want = reference.scan(s_pat, p_pat, o_pat);
                    let mut got_sorted = got.clone();
                    got_sorted.sort_unstable();
                    prop_assert_eq!(
                        &got_sorted, &want,
                        "pattern ({s_pat:?}, {p_pat:?}, {o_pat:?})"
                    );
                    prop_assert_eq!(indexed.count(s_pat, p_pat, o_pat), want.len());
                }
            }
        }
    }
}
