//! Property-based tests for the RDF substrate: store index consistency,
//! N-Triples round-trips and SPARQL evaluation invariants.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use crate::ntriples::{from_ntriples, to_ntriples};
use crate::persist::{DurableStore, ScratchDir};
use crate::shard::ShardedStore;
use crate::sparql::{evaluate, parse_select};
use crate::store::{IndexedStore, ScanStore, TripleStore};
use crate::term::Term;

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,6}(/[a-z0-9]{1,4}){0,2}".prop_map(|p| Term::iri(format!("http://t/{p}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Printable text including characters that need escaping.
        "[ -~]{0,12}".prop_map(Term::lit),
        any::<i32>().prop_map(|n| Term::lit(n.to_string())),
        (any::<f32>().prop_filter("finite", |f| f.is_finite()))
            .prop_map(|f| Term::lit(format!("{f}"))),
    ]
}

fn arb_triple() -> impl Strategy<Value = (Term, Term, Term)> {
    (arb_iri(), arb_iri(), prop_oneof![arb_iri(), arb_literal()])
}

/// One mutation drawn over a shared triple pool, so removes sometimes hit
/// stored triples: `(kind, pool index, graph index)`. Kind 0–7 insert,
/// 8–13 remove, 14–16 insert into a named graph, 17–18 remove from one,
/// 19 clears everything (rare on purpose).
type RawOp = (u8, prop::sample::Index, u8);

fn graph_term(g: u8) -> Term {
    Term::iri(format!("http://t/graph/{g}"))
}

/// Apply one raw op to any backend; returns what the mutation reported
/// (insert/remove return whether state changed — the set-semantics bit
/// the differential test pins across backends).
fn apply_store_op(
    st: &mut dyn TripleStore,
    pool: &[(Term, Term, Term)],
    (kind, idx, g): &RawOp,
) -> bool {
    let (s, p, o) = pool[idx.index(pool.len())].clone();
    match kind {
        0..=7 => st.insert(s, p, o),
        8..=13 => st.remove(&s, &p, &o),
        14..=16 => st.insert_in(graph_term(*g), s, p, o),
        17..=18 => {
            let ids = (st.term_id(&s), st.term_id(&p), st.term_id(&o));
            match (st.term_id(&graph_term(*g)), ids) {
                (Some(gid), (Some(s), Some(p), Some(o))) => st.remove_ids_in(gid, (s, p, o)),
                _ => false,
            }
        }
        _ => {
            st.clear();
            true
        }
    }
}

/// The backend-independent image of a store: default-graph triples plus
/// per-graph tagged triples, at the term level (interned ids are not
/// comparable across backends or reopens).
type StoreImage = (
    BTreeSet<(Term, Term, Term)>,
    BTreeMap<Term, BTreeSet<(Term, Term, Term)>>,
);

fn store_image(st: &dyn TripleStore) -> StoreImage {
    let default_graph = st
        .iter_terms()
        .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
        .collect();
    let named = st
        .graph_names()
        .into_iter()
        .map(|graph| {
            let gid = st.term_id(&graph).expect("graph name interned");
            let tagged = st
                .scan_in(gid, None, None, None)
                .into_iter()
                .map(|(s, p, o)| {
                    (
                        st.resolve(s).clone(),
                        st.resolve(p).clone(),
                        st.resolve(o).clone(),
                    )
                })
                .collect();
            (graph, tagged)
        })
        .collect();
    (default_graph, named)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/remove keeps all three indexes consistent; scans agree.
    #[test]
    fn store_indexes_stay_consistent(
        triples in prop::collection::vec(arb_triple(), 1..40),
        remove_mask in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        for ((s, p, o), rm) in triples.iter().zip(remove_mask.iter().cycle()) {
            if *rm {
                store.remove(s, p, o);
            }
        }
        // Every remaining triple is findable through all access patterns.
        let all: Vec<_> = store
            .iter_terms()
            .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
            .collect();
        prop_assert_eq!(all.len(), store.len());
        for (s, p, o) in &all {
            prop_assert!(store.contains(s, p, o));
            let (si, pi, oi) = (
                store.term_id(s).expect("interned"),
                store.term_id(p).expect("interned"),
                store.term_id(o).expect("interned"),
            );
            prop_assert_eq!(store.scan(Some(si), Some(pi), None).iter()
                .filter(|t| t.2 == oi).count(), 1);
            prop_assert_eq!(store.scan(None, Some(pi), Some(oi)).iter()
                .filter(|t| t.0 == si).count(), 1);
            prop_assert_eq!(store.scan(Some(si), None, Some(oi)).iter()
                .filter(|t| t.1 == pi).count(), 1);
        }
    }

    /// N-Triples serialization round-trips arbitrary stores.
    #[test]
    fn ntriples_roundtrip(triples in prop::collection::vec(arb_triple(), 0..30)) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let text = to_ntriples(&store);
        let back = from_ntriples(&text).expect("own output parses");
        prop_assert_eq!(back.len(), store.len());
        for (s, p, o) in store.iter_terms() {
            prop_assert!(back.contains(s, p, o), "lost {s} {p} {o}");
        }
    }

    /// A `SELECT ?s ?o WHERE {{ ?s <p> ?o }}` query returns exactly the
    /// triples stored under that predicate.
    #[test]
    fn bgp_single_pattern_is_exact(
        triples in prop::collection::vec(arb_triple(), 1..30),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let (_, pred, _) = &triples[pick.index(triples.len())];
        let expected = store
            .iter_terms()
            .filter(|(_, p, _)| *p == pred)
            .count();
        let q = parse_select(&format!(
            "SELECT ?s ?o WHERE {{ ?s <{}> ?o . }}",
            pred.str_value()
        ))
        .expect("query parses");
        let rs = evaluate(&store, &q);
        prop_assert_eq!(rs.len(), expected);
    }

    /// DISTINCT never increases the row count and is idempotent.
    #[test]
    fn distinct_is_contractive(triples in prop::collection::vec(arb_triple(), 1..30)) {
        let mut store = IndexedStore::new();
        for (s, p, o) in &triples {
            store.insert(s.clone(), p.clone(), o.clone());
        }
        let plain = evaluate(
            &store,
            &parse_select("SELECT ?p WHERE { ?s ?x ?o . }").unwrap_or_else(|_| parse_select("SELECT ?s WHERE { ?s <http://t/q> ?o . }").expect("parses")),
        );
        let _ = plain;
        // Use a concrete predicate from the data for a meaningful check.
        let pred = triples[0].1.str_value().to_string();
        let q1 = parse_select(&format!("SELECT ?s WHERE {{ ?s <{pred}> ?o . }}")).expect("q");
        let q2 =
            parse_select(&format!("SELECT DISTINCT ?s WHERE {{ ?s <{pred}> ?o . }}")).expect("q");
        let all = evaluate(&store, &q1);
        let distinct = evaluate(&store, &q2);
        prop_assert!(distinct.len() <= all.len());
        let rerun = evaluate(&store, &q2);
        prop_assert_eq!(distinct.len(), rerun.len());
    }

    /// Property-path `+` results equal the transitive closure computed by
    /// a reference BFS.
    #[test]
    fn plus_path_equals_reference_closure(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..25),
        start in 0u8..12,
    ) {
        let mut store = IndexedStore::new();
        let node = |n: u8| Term::iri(format!("http://n/{n}"));
        for (a, b) in &edges {
            store.insert(node(*a), Term::iri("http://p/next"), node(*b));
        }
        // Reference BFS.
        let mut reach = std::collections::BTreeSet::new();
        let mut queue = vec![start];
        let mut visited = std::collections::BTreeSet::new();
        while let Some(cur) = queue.pop() {
            if !visited.insert(cur) {
                continue;
            }
            for (a, b) in &edges {
                if *a == cur {
                    reach.insert(*b);
                    queue.push(*b);
                }
            }
        }
        let q = parse_select(&format!(
            "SELECT ?x WHERE {{ <http://n/{start}> <http://p/next>+ ?x . }}"
        ))
        .expect("q");
        let rs = evaluate(&store, &q);
        prop_assert_eq!(rs.len(), reach.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test of the backends: after the same churn, the
    /// indexed store answers every one of the eight triple patterns
    /// identically to the naive scan reference.
    #[test]
    fn indexed_store_matches_scan_reference(
        triples in prop::collection::vec(arb_triple(), 1..50),
        remove_mask in prop::collection::vec(any::<bool>(), 1..50),
        probe in any::<prop::sample::Index>(),
    ) {
        let mut indexed = IndexedStore::new();
        let mut reference = ScanStore::new();
        for (s, p, o) in &triples {
            indexed.insert(s.clone(), p.clone(), o.clone());
            reference.insert(s.clone(), p.clone(), o.clone());
        }
        for ((s, p, o), rm) in triples.iter().zip(remove_mask.iter().cycle()) {
            if *rm {
                indexed.remove(s, p, o);
                reference.remove(s, p, o);
            }
        }
        prop_assert_eq!(indexed.len(), reference.len());

        // Interning orders agree (same insertion sequence), so ids are
        // directly comparable across the two stores.
        let (s, p, o) = &triples[probe.index(triples.len())];
        let ids = |st: &dyn TripleStore| {
            (st.term_id(s), st.term_id(p), st.term_id(o))
        };
        prop_assert_eq!(ids(&indexed), ids(&reference));
        let (si, pi, oi) = ids(&indexed);

        // All eight access patterns over a probe triple's components.
        for s_pat in [None, si] {
            for p_pat in [None, pi] {
                for o_pat in [None, oi] {
                    let got = indexed.scan(s_pat, p_pat, o_pat);
                    let want = reference.scan(s_pat, p_pat, o_pat);
                    let mut got_sorted = got.clone();
                    got_sorted.sort_unstable();
                    prop_assert_eq!(
                        &got_sorted, &want,
                        "pattern ({s_pat:?}, {p_pat:?}, {o_pat:?})"
                    );
                    prop_assert_eq!(indexed.count(s_pat, p_pat, o_pat), want.len());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential test of the durable backend: after an arbitrary
    /// mutation history (inserts, removes, named-graph tags, clears), the
    /// WAL-journaling store agrees with the in-memory reference op by op,
    /// state for state — and a reopen (snapshot-free recovery: pure log
    /// replay) reproduces the exact same image.
    #[test]
    fn persistent_store_matches_indexed_reference(
        pool in prop::collection::vec(arb_triple(), 4..12),
        ops in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..50),
    ) {
        let dir = ScratchDir::new("prop-durable-diff");
        let mut durable = DurableStore::open(dir.path()).expect("durable store opens");
        let mut reference = IndexedStore::new();
        for op in &ops {
            let got = apply_store_op(&mut durable, &pool, op);
            let want = apply_store_op(&mut reference, &pool, op);
            prop_assert_eq!(got, want, "set-semantics disagreement on {:?}", op);
        }
        prop_assert_eq!(durable.len(), reference.len());
        prop_assert_eq!(store_image(&durable), store_image(&reference));
        drop(durable);
        let recovered = DurableStore::open(dir.path()).expect("recovery succeeds");
        prop_assert_eq!(store_image(&recovered), store_image(&reference));
    }

    /// Compaction mid-history changes nothing observable: snapshot + log
    /// replay ≡ the full in-memory history, including a second
    /// compact/reopen cycle (recovery from a snapshot alone).
    #[test]
    fn persistent_compaction_preserves_history(
        pool in prop::collection::vec(arb_triple(), 4..10),
        ops1 in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..30),
        ops2 in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..30),
    ) {
        let dir = ScratchDir::new("prop-durable-compact");
        let mut durable = DurableStore::open(dir.path()).expect("opens");
        let mut reference = IndexedStore::new();
        for op in &ops1 {
            apply_store_op(&mut durable, &pool, op);
            apply_store_op(&mut reference, &pool, op);
        }
        durable.compact().expect("compaction succeeds");
        prop_assert_eq!(durable.wal_records(), 0);
        for op in &ops2 {
            apply_store_op(&mut durable, &pool, op);
            apply_store_op(&mut reference, &pool, op);
        }
        drop(durable);
        // Recovery: snapshot(ops1) + wal(ops2).
        let mut recovered = DurableStore::open(dir.path()).expect("recovers");
        prop_assert_eq!(store_image(&recovered), store_image(&reference));
        // Recovery from the snapshot alone (empty log tail).
        recovered.compact().expect("second compaction succeeds");
        drop(recovered);
        let again = DurableStore::open(dir.path()).expect("recovers from snapshot");
        prop_assert_eq!(store_image(&again), store_image(&reference));
    }

    /// Differential test of the sharded backend: for any shard count
    /// (including the degenerate N=1) and any op history over the full
    /// mutation surface, `ShardedStore` agrees with the in-memory
    /// reference op by op (set semantics) and state for state.
    #[test]
    fn sharded_store_matches_indexed_reference(
        shards in 1usize..=4,
        pool in prop::collection::vec(arb_triple(), 4..12),
        ops in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..50),
    ) {
        let mut sharded = ShardedStore::new(shards);
        let mut reference = IndexedStore::new();
        for op in &ops {
            let got = apply_store_op(&mut sharded, &pool, op);
            let want = apply_store_op(&mut reference, &pool, op);
            prop_assert_eq!(got, want, "set-semantics disagreement on {:?}", op);
        }
        prop_assert_eq!(sharded.len(), reference.len());
        prop_assert_eq!(store_image(&sharded), store_image(&reference));
        // Pattern-level agreement over a sample of the pool's terms
        // (counts exercise the fan-out sum path).
        for (s, p, o) in pool.iter().take(4) {
            let sid = |st: &dyn TripleStore| (st.term_id(s), st.term_id(p), st.term_id(o));
            let (ss, sp, so) = sid(&sharded);
            let (rs, rp, ro) = sid(&reference);
            prop_assert_eq!(ss.is_some(), rs.is_some());
            prop_assert_eq!(
                sharded.count(ss, sp, None),
                reference.count(rs, rp, None)
            );
            prop_assert_eq!(
                sharded.count(None, sp, so),
                reference.count(None, rp, ro)
            );
        }
    }

    /// A durable sharded store reopens to exactly the state the ops
    /// built, for any shard count — per-shard WAL replay plus the
    /// global-id translation rebuild reproduce the image.
    #[test]
    fn sharded_durable_reopen_reproduces_history(
        shards in 1usize..=3,
        pool in prop::collection::vec(arb_triple(), 4..10),
        ops in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..40),
    ) {
        let dir = ScratchDir::new("prop-shard-durable");
        let mut reference = IndexedStore::new();
        {
            let mut sharded = ShardedStore::open_durable(dir.path(), shards)
                .expect("sharded durable store opens");
            for op in &ops {
                apply_store_op(&mut sharded, &pool, op);
                apply_store_op(&mut reference, &pool, op);
            }
            prop_assert_eq!(store_image(&sharded), store_image(&reference));
        }
        let recovered = ShardedStore::open_durable(dir.path(), shards)
            .expect("sharded recovery succeeds");
        prop_assert_eq!(store_image(&recovered), store_image(&reference));
    }

    /// Crash semantics: truncating the log at ANY byte recovers exactly
    /// the history's committed prefix — the torn trailing record is
    /// dropped silently, nothing before it is lost, nothing after it is
    /// resurrected, and recovery never errors.
    #[test]
    fn persistent_torn_tail_recovers_committed_prefix(
        pool in prop::collection::vec(arb_triple(), 4..10),
        ops in prop::collection::vec((0u8..20, any::<prop::sample::Index>(), 0u8..3), 1..40),
        cut in any::<prop::sample::Index>(),
    ) {
        let dir = ScratchDir::new("prop-durable-torn");
        let mut durable = DurableStore::open(dir.path()).expect("opens");
        // Committed byte offset after each op (no-ops journal nothing).
        let mut ends = Vec::with_capacity(ops.len());
        for op in &ops {
            apply_store_op(&mut durable, &pool, op);
            ends.push(durable.wal_bytes());
        }
        let wal_path = durable.wal_path();
        let total = durable.wal_bytes();
        drop(durable);
        // Tear the log at an arbitrary byte.
        let cut_at = cut.index(total as usize + 1) as u64;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .expect("wal exists");
        f.set_len(cut_at).expect("truncates");
        drop(f);
        // Expected: the ops whose records fully reached the log.
        let committed = ends.iter().filter(|&&e| e <= cut_at).count();
        let mut reference = IndexedStore::new();
        for op in &ops[..committed] {
            apply_store_op(&mut reference, &pool, op);
        }
        let recovered = DurableStore::open(dir.path()).expect("torn tail is not fatal");
        prop_assert_eq!(
            store_image(&recovered),
            store_image(&reference),
            "cut at byte {} of {} ({} of {} ops committed)",
            cut_at, total, committed, ops.len()
        );
    }
}
