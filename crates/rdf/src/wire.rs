//! Replication wire format: length-delimited, FNV-checksummed frames.
//!
//! Every byte that would cross a network in the replication subsystem
//! ([`galo_core::replication`](../../galo_core/replication/index.html))
//! goes through this codec — learner publishes, primary acknowledgements,
//! the replica mutation feed, and cold-start snapshot transfers. A frame
//! is:
//!
//! ```text
//! magic "GWF1" | kind u8 | seq u64 LE | epoch u64 LE |
//! payload_len u32 LE | payload bytes | fnv64 LE over kind..payload
//! ```
//!
//! Payloads reuse the formats the store already trusts: `Publish` carries
//! N-Quads text ([`crate::ntriples`]), `Mutation` carries WAL v2 record
//! lines ([`crate::persist::Record`], each line self-checksummed exactly
//! as in the on-disk log), and `Snapshot` carries
//! [`crate::persist::snapshot_bytes`] output verbatim. The outer checksum
//! covers everything after the magic, so a frame torn at *any* byte — or
//! with any byte corrupted in flight — decodes to an error, never to a
//! different frame ([`decode_frame`] pins this with a proptest).

use crate::fnv::fnv1a;
use crate::ntriples::{parse_ntriples, Quad};
use crate::persist::{parse_record_v2, render_record_v2, Record};

/// Frame preamble: "galo wire format v1".
pub const FRAME_MAGIC: [u8; 4] = *b"GWF1";

/// Fixed header length: magic + kind + seq + epoch + payload length.
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 4;

/// Trailing checksum length.
const SUM_LEN: usize = 8;

/// Refuse to allocate for absurd advertised payload lengths (a corrupted
/// length field must not turn into an OOM before the checksum check).
const MAX_PAYLOAD: u32 = 256 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, PartialEq)]
pub enum FramePayload {
    /// Learner → primary: publish these statements (N-Quads text).
    Publish(Vec<Quad>),
    /// Primary → sender: request `seq` applied; `added` is how many
    /// statements were new (0 for an idempotent re-delivery).
    Ack { added: u64 },
    /// Primary → replica: one ordered feed entry of WAL v2 records.
    Mutation(Vec<Record>),
    /// Primary → replica: the full image in snapshot format
    /// ([`crate::persist::snapshot_bytes`]).
    Snapshot(Vec<u8>),
    /// Replica → primary: send feed entries starting at this frame's
    /// `seq`; `max` bounds the batch (0 = no bound).
    Pull { max: u32 },
}

impl FramePayload {
    fn kind(&self) -> u8 {
        match self {
            FramePayload::Publish(_) => 1,
            FramePayload::Ack { .. } => 2,
            FramePayload::Mutation(_) => 3,
            FramePayload::Snapshot(_) => 4,
            FramePayload::Pull { .. } => 5,
        }
    }
}

/// One replication frame: a sequence number, the primary mutation epoch
/// the frame was stamped at (0 where not meaningful), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Publish/ack: the sender's request id. Mutation: the feed index.
    /// Pull: the first feed index wanted.
    pub seq: u64,
    /// The primary's mutation epoch associated with this frame — after
    /// apply for acks, after the entry for feed frames, at capture for
    /// snapshots.
    pub epoch: u64,
    pub payload: FramePayload,
}

/// A rejected [`decode_frame`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// Not enough bytes for a whole frame — the only retryable error: a
    /// reader holding a stream prefix waits for more bytes.
    Truncated,
    /// The first four bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// Checksum verified but the kind byte is unknown (a newer peer).
    BadKind(u8),
    /// The trailing FNV-64 does not match the received bytes.
    Checksum { stored: u64, computed: u64 },
    /// Envelope intact but the payload would not parse.
    Payload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Checksum { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:016x}, computed {computed:016x}"
                )
            }
            FrameError::Payload(m) => write!(f, "bad frame payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn quad_line(q: &Quad) -> String {
    let (s, p, o, g) = q;
    match g {
        Some(g) => format!("{s} {p} {o} {g} .\n"),
        None => format!("{s} {p} {o} .\n"),
    }
}

fn payload_bytes(payload: &FramePayload) -> Vec<u8> {
    match payload {
        FramePayload::Publish(quads) => {
            let mut text = String::new();
            for q in quads {
                text.push_str(&quad_line(q));
            }
            text.into_bytes()
        }
        FramePayload::Ack { added } => added.to_le_bytes().to_vec(),
        FramePayload::Mutation(records) => {
            let mut text = String::new();
            for r in records {
                text.push_str(&render_record_v2(r));
            }
            text.into_bytes()
        }
        FramePayload::Snapshot(bytes) => bytes.clone(),
        FramePayload::Pull { max } => max.to_le_bytes().to_vec(),
    }
}

fn parse_payload(kind: u8, bytes: &[u8]) -> Result<FramePayload, FrameError> {
    let bad = |m: &str| FrameError::Payload(m.to_string());
    match kind {
        1 => {
            let text = std::str::from_utf8(bytes).map_err(|_| bad("non-UTF-8 publish"))?;
            let quads = parse_ntriples(text)
                .map_err(|e| FrameError::Payload(format!("line {}: {}", e.line, e.message)))?;
            Ok(FramePayload::Publish(quads))
        }
        2 => {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| bad("ack length"))?;
            Ok(FramePayload::Ack {
                added: u64::from_le_bytes(arr),
            })
        }
        3 => {
            let text = std::str::from_utf8(bytes).map_err(|_| bad("non-UTF-8 mutation"))?;
            let mut records = Vec::new();
            for line in text.lines() {
                records.push(parse_record_v2(line).ok_or_else(|| bad("bad mutation record"))?);
            }
            Ok(FramePayload::Mutation(records))
        }
        4 => Ok(FramePayload::Snapshot(bytes.to_vec())),
        5 => {
            let arr: [u8; 4] = bytes.try_into().map_err(|_| bad("pull length"))?;
            Ok(FramePayload::Pull {
                max: u32::from_le_bytes(arr),
            })
        }
        k => Err(FrameError::BadKind(k)),
    }
}

/// Encode one frame. The result is self-delimiting: a reader that has the
/// whole encoding (and possibly trailing bytes of the next frame) can
/// [`decode_frame`] it back and learn how many bytes it consumed.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = payload_bytes(&frame.payload);
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + SUM_LEN);
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(frame.payload.kind());
    buf.extend_from_slice(&frame.seq.to_le_bytes());
    buf.extend_from_slice(&frame.epoch.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&payload);
    let sum = fnv1a(&buf[FRAME_MAGIC.len()..]);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Decode the frame at the head of `bytes`. Returns the frame and the
/// number of bytes it occupied. Validation order matters for the failure
/// model: length first (so a torn prefix is always [`FrameError::Truncated`]),
/// then the envelope checksum (so corruption anywhere in kind, seq,
/// epoch, length, or payload is caught before any payload parsing), then
/// the payload itself.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    if bytes.len() < FRAME_MAGIC.len() {
        return Err(FrameError::Truncated);
    }
    if bytes[..FRAME_MAGIC.len()] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let kind = bytes[4];
    let seq = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
    let epoch = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
    let payload_len = u32::from_le_bytes(bytes[21..25].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Payload(format!(
            "payload length {payload_len} over limit"
        )));
    }
    let total = HEADER_LEN + payload_len as usize + SUM_LEN;
    if bytes.len() < total {
        return Err(FrameError::Truncated);
    }
    let body_end = HEADER_LEN + payload_len as usize;
    let stored = u64::from_le_bytes(bytes[body_end..total].try_into().unwrap());
    let computed = fnv1a(&bytes[FRAME_MAGIC.len()..body_end]);
    if stored != computed {
        return Err(FrameError::Checksum { stored, computed });
    }
    let payload = parse_payload(kind, &bytes[HEADER_LEN..body_end])?;
    Ok((
        Frame {
            seq,
            epoch,
            payload,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sample_frames() -> Vec<Frame> {
        let q: Quad = (
            Term::iri("urn:s"),
            Term::iri("urn:p"),
            Term::lit("a \"quoted\"\nvalue"),
            Some(Term::iri("urn:g")),
        );
        let q2: Quad = (
            Term::iri("urn:s2"),
            Term::iri("urn:p"),
            Term::Blank("b0".into()),
            None,
        );
        vec![
            Frame {
                seq: 7,
                epoch: 0,
                payload: FramePayload::Publish(vec![q.clone(), q2.clone()]),
            },
            Frame {
                seq: 7,
                epoch: 42,
                payload: FramePayload::Ack { added: 2 },
            },
            Frame {
                seq: 3,
                epoch: 44,
                payload: FramePayload::Mutation(vec![
                    Record::Insert(q.0.clone(), q.1.clone(), q.2.clone(), q.3.clone()),
                    Record::Remove(q2.0.clone(), q2.1.clone(), q2.2.clone(), None),
                    Record::Clear,
                ]),
            },
            Frame {
                seq: 0,
                epoch: 46,
                payload: FramePayload::Snapshot(vec![1, 2, 3, 255, 0]),
            },
            Frame {
                seq: 12,
                epoch: 0,
                payload: FramePayload::Pull { max: 64 },
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (decoded, used) = decode_frame(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_bytes() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut at = 0;
        for f in &frames {
            let (decoded, used) = decode_frame(&stream[at..]).expect("decodes mid-stream");
            assert_eq!(&decoded, f);
            at += used;
        }
        assert_eq!(at, stream.len());
    }

    #[test]
    fn torn_frame_at_every_byte_is_truncated() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                let err = decode_frame(&bytes[..cut]).expect_err("prefix must not decode");
                assert_eq!(err, FrameError::Truncated, "cut at {cut}");
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x01;
                match decode_frame(&bad) {
                    // A flipped length byte may make the frame look short.
                    Err(_) => {}
                    Ok((decoded, _)) => {
                        panic!("corruption at byte {i} decoded as {decoded:?}")
                    }
                }
            }
        }
    }
}
