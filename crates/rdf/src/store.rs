//! The triple store: interned triples with SPO/POS/OSP indexes.

use std::collections::BTreeSet;

use crate::term::{Interner, Term, TermId};

/// A ground triple of interned terms.
pub type Triple = (TermId, TermId, TermId);

/// In-memory triple store. Three B-tree indexes cover every single- and
/// two-term access pattern the SPARQL evaluator produces.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    interner: Interner,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl TripleStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term (public so callers can pre-intern query constants).
    pub fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    /// Id of a term if it has ever been interned.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Resolve an id back to its term.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Insert a triple of terms. Returns true if it was new.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.intern(s);
        let p = self.intern(p);
        let o = self.intern(o);
        self.insert_ids((s, p, o))
    }

    /// Insert an already-interned triple.
    pub fn insert_ids(&mut self, (s, p, o): Triple) -> bool {
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Remove a triple. Returns true if it was present.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(s),
            self.interner.get(p),
            self.interner.get(o),
        ) else {
            return false;
        };
        self.remove_ids((s, p, o))
    }

    /// Remove an interned triple.
    pub fn remove_ids(&mut self, (s, p, o): Triple) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// True if the ground triple is present.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (
            self.interner.get(s),
            self.interner.get(p),
            self.interner.get(o),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Iterate matching triples for a pattern where `None` is a wildcard.
    /// Chooses the index with the longest bound prefix.
    pub fn scan(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        const MIN: TermId = TermId(0);
        const MAX: TermId = TermId(u32::MAX);
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, MIN)..=(s, p, MAX))
                .copied()
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, MIN, MIN)..=(s, MAX, MAX))
                .copied()
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, MIN)..=(o, s, MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, MIN)..=(p, o, MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, MIN, MIN)..=(p, MAX, MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, MIN, MIN)..=(o, MAX, MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }

    /// Count matches without materializing (used by the evaluator's
    /// pattern-ordering heuristic).
    pub fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        const MIN: TermId = TermId(0);
        const MAX: TermId = TermId(u32::MAX);
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self.spo.range((s, p, MIN)..=(s, p, MAX)).count(),
            (Some(s), None, None) => self.spo.range((s, MIN, MIN)..=(s, MAX, MAX)).count(),
            (Some(s), None, Some(o)) => self.osp.range((o, s, MIN)..=(o, s, MAX)).count(),
            (None, Some(p), Some(o)) => self.pos.range((p, o, MIN)..=(p, o, MAX)).count(),
            (None, Some(p), None) => self.pos.range((p, MIN, MIN)..=(p, MAX, MAX)).count(),
            (None, None, Some(o)) => self.osp.range((o, MIN, MIN)..=(o, MAX, MAX)).count(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// All triples in SPO order, resolved to terms.
    pub fn iter_terms(&self) -> impl Iterator<Item = (&Term, &Term, &Term)> {
        self.spo
            .iter()
            .map(move |&(s, p, o)| (self.resolve(s), self.resolve(p), self.resolve(o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: u32) -> Term {
        Term::iri(format!("http://galo/qep/pop/{n}"))
    }

    fn prop(name: &str) -> Term {
        Term::iri(format!("http://galo/qep/property/{name}"))
    }

    fn paper_store() -> TripleStore {
        // The triples from paper §3.1.
        let mut st = TripleStore::new();
        st.insert(pop(2), prop("hasPopType"), Term::lit("NLJOIN"));
        st.insert(pop(2), prop("hasEstimateCardinality"), Term::lit("2949250"));
        st.insert(pop(2), prop("hasOuterInputStream"), pop(3));
        st.insert(pop(3), prop("hasOutputStream"), pop(2));
        st
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut st = paper_store();
        assert_eq!(st.len(), 4);
        assert!(!st.insert(pop(2), prop("hasPopType"), Term::lit("NLJOIN")));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn contains_and_remove() {
        let mut st = paper_store();
        assert!(st.contains(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(st.remove(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(!st.contains(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(!st.remove(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert_eq!(st.len(), 3);
    }

    #[test]
    fn scan_all_access_patterns() {
        let st = paper_store();
        let s = st.term_id(&pop(2));
        let p = st.term_id(&prop("hasOuterInputStream"));
        let o = st.term_id(&pop(3));
        // s p o
        assert_eq!(st.scan(s, p, o).len(), 1);
        // s p ?
        assert_eq!(st.scan(s, p, None).len(), 1);
        // s ? ?
        assert_eq!(st.scan(s, None, None).len(), 3);
        // ? p o
        assert_eq!(st.scan(None, p, o).len(), 1);
        // ? p ?
        assert_eq!(st.scan(None, p, None).len(), 1);
        // ? ? o
        assert_eq!(st.scan(None, None, o).len(), 1);
        // s ? o
        assert_eq!(st.scan(s, None, o).len(), 1);
        // ? ? ?
        assert_eq!(st.scan(None, None, None).len(), 4);
    }

    #[test]
    fn scan_with_unknown_term_is_empty() {
        let st = paper_store();
        assert!(st.term_id(&pop(99)).is_none());
        // A pattern whose constant was never interned matches nothing;
        // callers check term_id first, but a fresh id must also be safe.
        assert_eq!(st.scan(Some(TermId(9999)), None, None).len(), 0);
    }

    #[test]
    fn indexes_stay_consistent_under_churn() {
        let mut st = TripleStore::new();
        for i in 0..100u32 {
            st.insert(pop(i), prop("hasOutputStream"), pop(i + 1));
        }
        for i in (0..100u32).step_by(2) {
            st.remove(&pop(i), &prop("hasOutputStream"), &pop(i + 1));
        }
        assert_eq!(st.len(), 50);
        let p = st.term_id(&prop("hasOutputStream"));
        assert_eq!(st.scan(None, p, None).len(), 50);
        // Every remaining triple reachable from all three index shapes.
        for (s, _, o) in st.scan(None, p, None) {
            assert_eq!(st.scan(Some(s), p, Some(o)).len(), 1);
            assert_eq!(st.scan(Some(s), None, Some(o)).len(), 1);
        }
    }
}
