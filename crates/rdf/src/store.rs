//! Triple storage: the [`TripleStore`] trait and its in-memory backends.
//!
//! The knowledge base is the hot path of online re-optimization — every
//! incoming plan segment becomes a SPARQL query against it — so storage
//! is behind a trait: [`IndexedStore`] (hash-indexed, the default) serves
//! keyed triple-pattern lookups, while [`ScanStore`] is the naive
//! linear-scan reference used to cross-check results and benchmark the
//! indexes. A persistent or sharded backend can be dropped in without
//! touching the evaluator, the server, or the matching engine.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::term::{Interner, Term, TermId};

/// A ground triple of interned terms.
pub type Triple = (TermId, TermId, TermId);

/// Write-ahead-log pressure a durable backend reports through
/// [`TripleStore::storage_pressure`]: how much un-folded log the store is
/// carrying, and whether recent compactions have been failing. The
/// background [`Compactor`](crate::policy::Compactor) polls this to decide
/// when to trigger [`TripleStore::compact`] off the write path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoragePressure {
    /// Records journaled to the current log since the last rotation.
    pub wal_records: u64,
    /// Bytes in the current log (header included).
    pub wal_bytes: u64,
    /// Failed compaction attempts since open.
    pub compactions_failed: u64,
    /// Error text of the most recent failed compaction, cleared by the
    /// next success.
    pub last_compaction_error: Option<String>,
}

/// Storage contract for RDF triples.
///
/// A store owns a term [`Interner`] and a default graph of triples, plus
/// optional named graphs. The required methods work on interned
/// [`TermId`]s — the evaluator's hot path; the provided methods lift them
/// to [`Term`]s for callers that deal in concrete terms.
///
/// # Contract
///
/// * **Set semantics** — `insert_ids` returns `true` iff the triple was
///   new; `remove_ids` returns `true` iff it was present.
/// * **Pattern scans** — `scan(s, p, o)` treats `None` as a wildcard and
///   returns every matching default-graph triple. Results must be
///   deterministic for a given store content (iteration order must not
///   depend on process-level randomness).
/// * **Counting** — `count` agrees with `scan(..).len()` but should avoid
///   materializing (the evaluator orders patterns by it).
/// * **Named graphs** — `insert_ids_in` / `scan_in` address a named graph
///   by its (interned) name; `graph_names` enumerates the names of all
///   non-empty named graphs. Named graphs are disjoint from the default
///   graph.
/// * **Interning** — ids are stable for the lifetime of the store and
///   shared between the default and named graphs.
pub trait TripleStore: fmt::Debug + Send + Sync {
    // ---- interning ----

    /// Intern a term (public so callers can pre-intern query constants).
    fn intern(&mut self, term: Term) -> TermId;

    /// Id of a term if it has ever been interned.
    fn term_id(&self, term: &Term) -> Option<TermId>;

    /// Resolve an id back to its term.
    fn resolve(&self, id: TermId) -> &Term;

    // ---- default graph ----

    /// Insert an already-interned triple. Returns true if it was new.
    fn insert_ids(&mut self, t: Triple) -> bool;

    /// Remove an interned triple. Returns true if it was present.
    fn remove_ids(&mut self, t: Triple) -> bool;

    /// Remove every triple (all graphs). Interned terms remain valid.
    fn clear(&mut self);

    /// Number of triples in the default graph.
    fn len(&self) -> usize;

    /// Matching triples for a pattern where `None` is a wildcard.
    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple>;

    /// Count matches without materializing (used by the evaluator's
    /// pattern-ordering heuristic).
    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize;

    // ---- named graphs ----

    /// Names of all non-empty named graphs, in deterministic order.
    fn graph_names(&self) -> Vec<Term>;

    /// Insert a triple into the named graph `graph`.
    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool;

    /// Remove a triple from the named graph `graph`. Returns true if it
    /// was present (knowledge-base template retraction unlinks the
    /// per-workload tagging triples through this).
    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool;

    /// Pattern scan over one named graph.
    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple>;

    /// Interned ids of all non-empty named graphs, in the same order as
    /// [`graph_names`](Self::graph_names). The sharded backend uses this
    /// to enumerate a shard's graphs without resolving through the
    /// shard-local interner.
    fn graph_ids(&self) -> Vec<TermId> {
        self.graph_names()
            .iter()
            .filter_map(|g| self.term_id(g))
            .collect()
    }

    // ---- maintenance ----

    /// Checkpoint the store's durable state, if it has any. The in-memory
    /// backends are their own checkpoint (a no-op returning `Ok`); a
    /// persistent backend like
    /// [`DurableStore`](crate::persist::DurableStore) folds its
    /// write-ahead log into a fresh snapshot here. Callers reach this
    /// through `FusekiLite::compact` without knowing the backend.
    fn compact(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Hint that a batch of mutations follows. A durable backend may
    /// defer per-record flushing until [`end_batch`](Self::end_batch)
    /// (group commit: one flush per batch instead of per record); the
    /// in-memory backends ignore it. Balanced by `end_batch`; callers
    /// like `FusekiLite::insert_triples` bracket every write transaction
    /// with the pair.
    fn begin_batch(&mut self) {}

    /// End a mutation batch: a durable backend flushes the journal here
    /// and must fail-stop if the flush fails (writes in the batch were
    /// already acknowledged to the in-memory image). No-op by default.
    fn end_batch(&mut self) {}

    /// Write-ahead-log pressure of a durable backend — what a storage
    /// policy (the background [`Compactor`](crate::policy::Compactor))
    /// watches to decide when [`compact`](Self::compact) is worth its
    /// cost. `None` for in-memory backends, which have nothing to fold.
    fn storage_pressure(&self) -> Option<StoragePressure> {
        None
    }

    // ---- provided term-level API ----

    /// Insert a triple of terms into the default graph. Returns true if
    /// it was new.
    fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.intern(s);
        let p = self.intern(p);
        let o = self.intern(o);
        self.insert_ids((s, p, o))
    }

    /// Insert a triple of terms into the named graph `graph`.
    fn insert_in(&mut self, graph: Term, s: Term, p: Term, o: Term) -> bool {
        let g = self.intern(graph);
        let s = self.intern(s);
        let p = self.intern(p);
        let o = self.intern(o);
        self.insert_ids_in(g, (s, p, o))
    }

    /// Remove a triple of terms. Returns true if it was present.
    fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let (Some(s), Some(p), Some(o)) = (self.term_id(s), self.term_id(p), self.term_id(o))
        else {
            return false;
        };
        self.remove_ids((s, p, o))
    }

    /// True if the ground triple is present in the default graph.
    fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.term_id(s), self.term_id(p), self.term_id(o)) {
            (Some(s), Some(p), Some(o)) => self.count(Some(s), Some(p), Some(o)) == 1,
            _ => false,
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All default-graph triples in SPO order, resolved to terms.
    fn iter_terms(&self) -> Box<dyn Iterator<Item = (&Term, &Term, &Term)> + '_> {
        Box::new(
            self.scan(None, None, None)
                .into_iter()
                .map(move |(s, p, o)| (self.resolve(s), self.resolve(p), self.resolve(o))),
        )
    }
}

/// Shared named-graph storage for the in-memory backends: per-graph
/// B-tree sets, scanned linearly (named graphs hold tagging metadata and
/// stay small; the hot path is the default graph).
#[derive(Debug, Default, Clone)]
struct NamedGraphs {
    graphs: BTreeMap<TermId, BTreeSet<Triple>>,
}

impl NamedGraphs {
    fn insert(&mut self, graph: TermId, t: Triple) -> bool {
        self.graphs.entry(graph).or_default().insert(t)
    }

    fn remove(&mut self, graph: TermId, t: Triple) -> bool {
        let Some(triples) = self.graphs.get_mut(&graph) else {
            return false;
        };
        let removed = triples.remove(&t);
        if triples.is_empty() {
            self.graphs.remove(&graph);
        }
        removed
    }

    fn names(&self, resolve: impl Fn(TermId) -> Term) -> Vec<Term> {
        self.graphs
            .iter()
            .filter(|(_, triples)| !triples.is_empty())
            .map(|(&g, _)| resolve(g))
            .collect()
    }

    fn ids(&self) -> Vec<TermId> {
        self.graphs
            .iter()
            .filter(|(_, triples)| !triples.is_empty())
            .map(|(&g, _)| g)
            .collect()
    }

    fn scan(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        self.graphs
            .get(&graph)
            .map(|triples| {
                triples
                    .iter()
                    .filter(|&&(ts, tp, to)| {
                        s.is_none_or(|s| s == ts)
                            && p.is_none_or(|p| p == tp)
                            && o.is_none_or(|o| o == to)
                    })
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Hash-indexed in-memory backend: the default [`TripleStore`].
///
/// Every bound prefix of the SPO/POS/OSP access patterns is keyed: the
/// master B-tree set in SPO order serves S-prefix patterns via prefix
/// ranges (and full scans, `iter_terms`, deterministic N-Triples export),
/// while four hash indexes cover the POS and OSP families — so no
/// `scan`/`count` ever passes over the whole store.
#[derive(Debug, Default, Clone)]
pub struct IndexedStore {
    interner: Interner,
    /// Master copy in SPO order; prefix ranges serve the S-bound patterns.
    spo: BTreeSet<Triple>,
    /// p -> (o, s): the POS index family.
    by_p: HashMap<TermId, BTreeSet<(TermId, TermId)>>,
    by_po: HashMap<(TermId, TermId), BTreeSet<TermId>>,
    /// o -> (s, p): the OSP index family.
    by_o: HashMap<TermId, BTreeSet<(TermId, TermId)>>,
    by_os: HashMap<(TermId, TermId), BTreeSet<TermId>>,
    named: NamedGraphs,
}

impl IndexedStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of terms ever interned (ids are dense in `0..interner_len`).
    /// The snapshot writer serializes the full table so ids — including
    /// those of interned-but-unused terms — survive a snapshot round-trip.
    pub fn interner_len(&self) -> usize {
        self.interner.len()
    }
}

/// Remove `key -> member` from a one-to-many hash index, dropping the
/// entry when its set empties.
fn index_remove<K: std::hash::Hash + Eq, V: Ord>(
    index: &mut HashMap<K, BTreeSet<V>>,
    key: K,
    member: &V,
) {
    if let Some(set) = index.get_mut(&key) {
        set.remove(member);
        if set.is_empty() {
            index.remove(&key);
        }
    }
}

impl TripleStore for IndexedStore {
    fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    fn insert_ids(&mut self, (s, p, o): Triple) -> bool {
        let added = self.spo.insert((s, p, o));
        if added {
            self.by_p.entry(p).or_default().insert((o, s));
            self.by_po.entry((p, o)).or_default().insert(s);
            self.by_o.entry(o).or_default().insert((s, p));
            self.by_os.entry((o, s)).or_default().insert(p);
        }
        added
    }

    fn remove_ids(&mut self, (s, p, o): Triple) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            index_remove(&mut self.by_p, p, &(o, s));
            index_remove(&mut self.by_po, (p, o), &s);
            index_remove(&mut self.by_o, o, &(s, p));
            index_remove(&mut self.by_os, (o, s), &p);
        }
        removed
    }

    fn clear(&mut self) {
        self.spo.clear();
        self.by_p.clear();
        self.by_po.clear();
        self.by_o.clear();
        self.by_os.clear();
        self.named.graphs.clear();
    }

    fn len(&self) -> usize {
        self.spo.len()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    vec![]
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, TermId(0))..=(s, p, TermId(u32::MAX)))
                .copied()
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, TermId(0), TermId(0))..=(s, TermId(u32::MAX), TermId(u32::MAX)))
                .copied()
                .collect(),
            (Some(s), None, Some(o)) => self
                .by_os
                .get(&(o, s))
                .map(|ps| ps.iter().map(|&p| (s, p, o)).collect())
                .unwrap_or_default(),
            (None, Some(p), Some(o)) => self
                .by_po
                .get(&(p, o))
                .map(|ss| ss.iter().map(|&s| (s, p, o)).collect())
                .unwrap_or_default(),
            (None, Some(p), None) => self
                .by_p
                .get(&p)
                .map(|os| os.iter().map(|&(o, s)| (s, p, o)).collect())
                .unwrap_or_default(),
            (None, None, Some(o)) => self
                .by_o
                .get(&o)
                .map(|sp| sp.iter().map(|&(s, p)| (s, p, o)).collect())
                .unwrap_or_default(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, TermId(0))..=(s, p, TermId(u32::MAX)))
                .count(),
            (Some(s), None, None) => self
                .spo
                .range((s, TermId(0), TermId(0))..=(s, TermId(u32::MAX), TermId(u32::MAX)))
                .count(),
            (Some(s), None, Some(o)) => self.by_os.get(&(o, s)).map_or(0, BTreeSet::len),
            (None, Some(p), Some(o)) => self.by_po.get(&(p, o)).map_or(0, BTreeSet::len),
            (None, Some(p), None) => self.by_p.get(&p).map_or(0, BTreeSet::len),
            (None, None, Some(o)) => self.by_o.get(&o).map_or(0, BTreeSet::len),
            (None, None, None) => self.spo.len(),
        }
    }

    fn graph_names(&self) -> Vec<Term> {
        self.named.names(|g| self.interner.resolve(g).clone())
    }

    fn graph_ids(&self) -> Vec<TermId> {
        self.named.ids()
    }

    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        self.named.insert(graph, t)
    }

    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        self.named.remove(graph, t)
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        self.named.scan(graph, s, p, o)
    }
}

/// Naive linear-scan backend: the reference implementation.
///
/// Every pattern lookup walks the full triple set. Kept for differential
/// testing against [`IndexedStore`] (see the proptests) and as the
/// baseline side of the indexed-vs-scan micro-benchmark; also a model of
/// the minimal work a new backend has to do.
#[derive(Debug, Default, Clone)]
pub struct ScanStore {
    interner: Interner,
    triples: BTreeSet<Triple>,
    named: NamedGraphs,
}

impl ScanStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl TripleStore for ScanStore {
    fn intern(&mut self, term: Term) -> TermId {
        self.interner.intern(term)
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    fn insert_ids(&mut self, t: Triple) -> bool {
        self.triples.insert(t)
    }

    fn remove_ids(&mut self, t: Triple) -> bool {
        self.triples.remove(&t)
    }

    fn clear(&mut self) {
        self.triples.clear();
        self.named.graphs.clear();
    }

    fn len(&self) -> usize {
        self.triples.len()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        self.triples
            .iter()
            .filter(|&&(ts, tp, to)| {
                s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) && o.is_none_or(|o| o == to)
            })
            .copied()
            .collect()
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.triples
            .iter()
            .filter(|&&(ts, tp, to)| {
                s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) && o.is_none_or(|o| o == to)
            })
            .count()
    }

    fn graph_names(&self) -> Vec<Term> {
        self.named.names(|g| self.interner.resolve(g).clone())
    }

    fn graph_ids(&self) -> Vec<TermId> {
        self.named.ids()
    }

    fn insert_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        self.named.insert(graph, t)
    }

    fn remove_ids_in(&mut self, graph: TermId, t: Triple) -> bool {
        self.named.remove(graph, t)
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        self.named.scan(graph, s, p, o)
    }
}

/// The typed rejection a read replica answers writes with. At the
/// [`ReadOnlyStore`] level the infallible [`TripleStore`] mutators cannot
/// return it, so they raise it as a panic payload (`panic_any`) — loud by
/// construction, and `catch_unwind` callers can downcast to this type.
/// At the endpoint level [`crate::ServerError::ReadOnlyReplica`] wraps it
/// as an ordinary error value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOnlyReplica {
    /// The rejected operation, e.g. `"insert_ids"` or `"update"`.
    pub op: &'static str,
}

impl fmt::Display for ReadOnlyReplica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read-only replica rejected {}: writes must go to the primary",
            self.op
        )
    }
}

impl std::error::Error for ReadOnlyReplica {}

/// A [`TripleStore`] wrapper that delegates every read and rejects every
/// mutation with a [`ReadOnlyReplica`] panic. Read replicas hand this out
/// where a `&mut dyn TripleStore` could otherwise leak write access; it
/// guarantees a replica image can only diverge from the primary through
/// the replication feed, never through a stray local write that would be
/// silently applied (or, worse, silently dropped by a lenient wrapper).
#[derive(Debug)]
pub struct ReadOnlyStore {
    inner: Box<dyn TripleStore>,
}

impl ReadOnlyStore {
    pub fn new(inner: Box<dyn TripleStore>) -> Self {
        ReadOnlyStore { inner }
    }

    /// Unwrap — the privileged escape hatch the replication apply path
    /// uses to replay feed frames.
    pub fn into_inner(self) -> Box<dyn TripleStore> {
        self.inner
    }

    fn reject(op: &'static str) -> ! {
        std::panic::panic_any(ReadOnlyReplica { op })
    }
}

impl TripleStore for ReadOnlyStore {
    fn intern(&mut self, _term: Term) -> TermId {
        Self::reject("intern")
    }

    fn term_id(&self, term: &Term) -> Option<TermId> {
        self.inner.term_id(term)
    }

    fn resolve(&self, id: TermId) -> &Term {
        self.inner.resolve(id)
    }

    fn insert_ids(&mut self, _t: Triple) -> bool {
        Self::reject("insert_ids")
    }

    fn remove_ids(&mut self, _t: Triple) -> bool {
        Self::reject("remove_ids")
    }

    fn clear(&mut self) {
        Self::reject("clear")
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        self.inner.scan(s, p, o)
    }

    fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.inner.count(s, p, o)
    }

    fn graph_names(&self) -> Vec<Term> {
        self.inner.graph_names()
    }

    fn graph_ids(&self) -> Vec<TermId> {
        self.inner.graph_ids()
    }

    fn insert_ids_in(&mut self, _graph: TermId, _t: Triple) -> bool {
        Self::reject("insert_ids_in")
    }

    fn remove_ids_in(&mut self, _graph: TermId, _t: Triple) -> bool {
        Self::reject("remove_ids_in")
    }

    fn scan_in(
        &self,
        graph: TermId,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<Triple> {
        self.inner.scan_in(graph, s, p, o)
    }

    fn compact(&mut self) -> std::io::Result<()> {
        Self::reject("compact")
    }

    fn storage_pressure(&self) -> Option<StoragePressure> {
        self.inner.storage_pressure()
    }

    fn begin_batch(&mut self) {
        Self::reject("begin_batch")
    }

    fn end_batch(&mut self) {
        Self::reject("end_batch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(n: u32) -> Term {
        Term::iri(format!("http://galo/qep/pop/{n}"))
    }

    fn prop(name: &str) -> Term {
        Term::iri(format!("http://galo/qep/property/{name}"))
    }

    fn fill_paper_store(st: &mut dyn TripleStore) {
        // The triples from paper §3.1.
        st.insert(pop(2), prop("hasPopType"), Term::lit("NLJOIN"));
        st.insert(pop(2), prop("hasEstimateCardinality"), Term::lit("2949250"));
        st.insert(pop(2), prop("hasOuterInputStream"), pop(3));
        st.insert(pop(3), prop("hasOutputStream"), pop(2));
    }

    fn paper_store() -> IndexedStore {
        let mut st = IndexedStore::new();
        fill_paper_store(&mut st);
        st
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut st = paper_store();
        assert_eq!(st.len(), 4);
        assert!(!st.insert(pop(2), prop("hasPopType"), Term::lit("NLJOIN")));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn contains_and_remove() {
        let mut st = paper_store();
        assert!(st.contains(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(st.remove(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(!st.contains(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert!(!st.remove(&pop(2), &prop("hasPopType"), &Term::lit("NLJOIN")));
        assert_eq!(st.len(), 3);
    }

    fn assert_scan_patterns(st: &dyn TripleStore) {
        let s = st.term_id(&pop(2));
        let p = st.term_id(&prop("hasOuterInputStream"));
        let o = st.term_id(&pop(3));
        // s p o
        assert_eq!(st.scan(s, p, o).len(), 1);
        // s p ?
        assert_eq!(st.scan(s, p, None).len(), 1);
        // s ? ?
        assert_eq!(st.scan(s, None, None).len(), 3);
        // ? p o
        assert_eq!(st.scan(None, p, o).len(), 1);
        // ? p ?
        assert_eq!(st.scan(None, p, None).len(), 1);
        // ? ? o
        assert_eq!(st.scan(None, None, o).len(), 1);
        // s ? o
        assert_eq!(st.scan(s, None, o).len(), 1);
        // ? ? ?
        assert_eq!(st.scan(None, None, None).len(), 4);
    }

    #[test]
    fn scan_all_access_patterns_both_backends() {
        let st = paper_store();
        assert_scan_patterns(&st);
        let mut scan = ScanStore::new();
        fill_paper_store(&mut scan);
        assert_scan_patterns(&scan);
    }

    #[test]
    fn scan_with_unknown_term_is_empty() {
        let st = paper_store();
        assert!(st.term_id(&pop(99)).is_none());
        // A pattern whose constant was never interned matches nothing;
        // callers check term_id first, but a fresh id must also be safe.
        assert_eq!(st.scan(Some(TermId(9999)), None, None).len(), 0);
    }

    #[test]
    fn indexes_stay_consistent_under_churn() {
        let mut st = IndexedStore::new();
        for i in 0..100u32 {
            st.insert(pop(i), prop("hasOutputStream"), pop(i + 1));
        }
        for i in (0..100u32).step_by(2) {
            st.remove(&pop(i), &prop("hasOutputStream"), &pop(i + 1));
        }
        assert_eq!(st.len(), 50);
        let p = st.term_id(&prop("hasOutputStream"));
        assert_eq!(st.scan(None, p, None).len(), 50);
        // Every remaining triple reachable from all three index shapes.
        for (s, _, o) in st.scan(None, p, None) {
            assert_eq!(st.scan(Some(s), p, Some(o)).len(), 1);
            assert_eq!(st.scan(Some(s), None, Some(o)).len(), 1);
        }
        // Counts stay keyed and consistent too.
        assert_eq!(st.count(None, p, None), 50);
        assert_eq!(st.count(None, None, None), 50);
    }

    #[test]
    fn stores_are_usable_as_trait_objects() {
        let mut boxed: Box<dyn TripleStore> = Box::<IndexedStore>::default();
        fill_paper_store(boxed.as_mut());
        assert_eq!(boxed.len(), 4);
        assert_eq!(boxed.iter_terms().count(), 4);
        let boxed_scan: Box<dyn TripleStore> = Box::<ScanStore>::default();
        assert!(boxed_scan.is_empty());
    }

    #[test]
    fn named_graphs_enumerate_and_scan() {
        let mut st = IndexedStore::new();
        assert!(st.graph_names().is_empty());
        let g1 = Term::iri("http://galo/graph/workload/tpcds");
        let g2 = Term::iri("http://galo/graph/workload/client");
        st.insert_in(g1.clone(), pop(1), prop("hasPopType"), Term::lit("NLJOIN"));
        st.insert_in(g1.clone(), pop(2), prop("hasPopType"), Term::lit("HSJOIN"));
        st.insert_in(g2.clone(), pop(3), prop("hasPopType"), Term::lit("IXSCAN"));
        assert_eq!(st.graph_names(), vec![g1.clone(), g2.clone()]);
        // Named graphs are disjoint from the default graph.
        assert_eq!(st.len(), 0);
        let g = st.term_id(&g1).expect("graph name interned");
        let p = st.term_id(&prop("hasPopType"));
        assert_eq!(st.scan_in(g, None, p, None).len(), 2);
        let s1 = st.term_id(&pop(1));
        assert_eq!(st.scan_in(g, s1, p, None).len(), 1);
    }

    #[test]
    fn named_graph_remove_is_set_semantics_on_both_backends() {
        for mut st in [
            Box::<IndexedStore>::default() as Box<dyn TripleStore>,
            Box::<ScanStore>::default(),
        ] {
            let g = Term::iri("http://galo/graph/workload/tpcds");
            st.insert_in(g.clone(), pop(1), prop("hasPopType"), Term::lit("NLJOIN"));
            st.insert_in(g.clone(), pop(2), prop("hasPopType"), Term::lit("HSJOIN"));
            let gid = st.term_id(&g).unwrap();
            let t = (
                st.term_id(&pop(1)).unwrap(),
                st.term_id(&prop("hasPopType")).unwrap(),
                st.term_id(&Term::lit("NLJOIN")).unwrap(),
            );
            assert!(st.remove_ids_in(gid, t));
            assert!(!st.remove_ids_in(gid, t), "second removal is a no-op");
            assert_eq!(st.scan_in(gid, None, None, None).len(), 1);
            // Emptying a graph drops it from the enumeration.
            let t2 = (
                st.term_id(&pop(2)).unwrap(),
                st.term_id(&prop("hasPopType")).unwrap(),
                st.term_id(&Term::lit("HSJOIN")).unwrap(),
            );
            assert!(st.remove_ids_in(gid, t2));
            assert!(st.graph_names().is_empty());
        }
    }

    #[test]
    fn clear_empties_all_graphs() {
        let mut st = IndexedStore::new();
        fill_paper_store(&mut st);
        st.insert_in(Term::iri("http://g"), pop(9), prop("x"), Term::lit("1"));
        st.clear();
        assert_eq!(st.len(), 0);
        assert!(st.graph_names().is_empty());
        assert_eq!(st.count(None, None, None), 0);
        // Interned ids survive a clear.
        assert!(st.term_id(&pop(2)).is_some());
    }
}
