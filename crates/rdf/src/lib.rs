//! # galo-rdf
//!
//! The knowledge-base substrate of the GALO reproduction: RDF triple
//! storage behind the [`TripleStore`] trait, N-Triples persistence, a
//! SPARQL subset (basic graph patterns, FILTER expressions, property
//! paths, `INSERT DATA`/`DELETE WHERE`) and a Fuseki-like concurrent
//! endpoint ([`FusekiLite`]).
//!
//! This replaces Apache Jena + Fuseki in the paper's architecture; see
//! DESIGN.md for the substitution argument.
//!
//! ## The `TripleStore` contract
//!
//! [`TripleStore`] is the swappable storage abstraction every higher
//! layer compiles against — the SPARQL evaluator is generic over it and
//! [`FusekiLite`] holds a `Box<dyn TripleStore>`. A backend provides:
//!
//! * **term interning** (`intern` / `term_id` / `resolve`) with ids that
//!   stay stable for the store's lifetime;
//! * **set-semantics mutation** (`insert_ids` / `remove_ids` / `clear`)
//!   over the default graph;
//! * **triple-pattern access** (`scan` / `count`) where `None` is a
//!   wildcard, with deterministic result order and a `count` that does
//!   not materialize (the evaluator's join-ordering heuristic calls it
//!   per pattern);
//! * **named graphs** (`graph_names` / `insert_ids_in` / `scan_in`) for
//!   tagging triple sets — e.g. one graph per learned workload — without
//!   polluting the default graph that pattern matching runs against.
//!
//! Three backends ship: [`IndexedStore`] (the default; an SPO master
//! B-tree plus POS and OSP hash-index families make every bound-prefix
//! lookup keyed), [`ScanStore`] (the naive linear-scan reference the
//! proptests differential-test against), and [`DurableStore`] (the
//! persistent backend: an append-only N-Quads write-ahead log plus
//! periodic binary snapshots around an inner `IndexedStore`, with
//! crash recovery in [`DurableStore::open`] — see the [`persist`]
//! module docs for the on-disk formats). A sharded backend only has to
//! implement the same contract to drop in.

mod fnv;
pub mod ntriples;
pub mod persist;
pub mod policy;
pub mod server;
pub mod shard;
pub mod sparql;
pub mod store;
pub mod term;
pub mod wire;

pub use ntriples::{from_ntriples, load_ntriples, parse_ntriples, to_ntriples, NtParseError, Quad};
pub use persist::{
    snapshot_bytes, store_from_snapshot, DurableOptions, DurableStore, Record, ScratchDir,
};
pub use policy::{CompactionPolicy, CompactionTarget, Compactor, CompactorStats};
pub use server::{FusekiLite, MutationScope, Probe, ServerError};
pub use shard::{HashRouter, ShardRouter, ShardStats, ShardedStore, TemplateRouter};
pub use sparql::{
    apply_update, constants_interned, evaluate, evaluate_prepared, evaluate_seeded, parse_select,
    parse_update, prepare_seeded, projected_vars, CmpOp, Expr, PathPattern, PreparedQuery,
    ResultSet, SelectQuery, SparqlParseError, TermPattern, TriplePattern, Update,
};
pub use store::{
    IndexedStore, ReadOnlyReplica, ReadOnlyStore, ScanStore, StoragePressure, Triple, TripleStore,
};
pub use term::{Interner, Literal, Term, TermId};
pub use wire::{decode_frame, encode_frame, Frame, FrameError, FramePayload, FRAME_MAGIC};

#[cfg(test)]
mod proptests;
