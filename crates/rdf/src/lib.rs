//! # galo-rdf
//!
//! The knowledge-base substrate of the GALO reproduction: an in-memory RDF
//! triple store with SPO/POS/OSP indexes ([`TripleStore`]), N-Triples
//! persistence, a SPARQL subset (basic graph patterns, FILTER expressions,
//! property paths, `INSERT DATA`/`DELETE WHERE`) and a Fuseki-like
//! concurrent endpoint ([`FusekiLite`]).
//!
//! This replaces Apache Jena + Fuseki in the paper's architecture; see
//! DESIGN.md for the substitution argument.

pub mod ntriples;
pub mod server;
pub mod sparql;
pub mod store;
pub mod term;

pub use ntriples::{from_ntriples, load_ntriples, to_ntriples, NtParseError};
pub use server::{FusekiLite, ServerError};
pub use sparql::{
    apply_update, evaluate, parse_select, parse_update, ResultSet, SelectQuery, SparqlParseError,
    Update,
};
pub use store::{Triple, TripleStore};
pub use term::{Interner, Literal, Term, TermId};

#[cfg(test)]
mod proptests;
