//! N-Triples / N-Quads serialization — the knowledge base's persistence
//! format. Default-graph triples serialize as N-Triples lines
//! (`<s> <p> <o> .`); named-graph content serializes as N-Quads lines
//! with the graph label in the fourth position (`<s> <p> <o> <g> .`),
//! so a dataset with per-workload graphs round-trips losslessly.
//!
//! The paper stores the knowledge base in Jena TDB; this reproduction
//! persists it as N-Triples, the simplest W3C interchange format, which
//! keeps persistence dependency-free and diffable.

use std::fmt;

use crate::store::{IndexedStore, TripleStore};
use crate::term::Term;

/// Error from N-Triples parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for NtParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for NtParseError {}

/// Serialize a store as N-Triples text (one `<s> <p> <o> .` per line).
pub fn to_ntriples<S: TripleStore + ?Sized>(store: &S) -> String {
    let mut out = String::new();
    for (s, p, o) in store.iter_terms() {
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    // Named graphs follow as N-Quads lines.
    for graph in store.graph_names() {
        let g = store.term_id(&graph).expect("graph name is interned");
        for (s, p, o) in store.scan_in(g, None, None, None) {
            out.push_str(&format!(
                "{} {} {} {graph} .\n",
                store.resolve(s),
                store.resolve(p),
                store.resolve(o)
            ));
        }
    }
    out
}

/// Parse N-Triples text into a fresh indexed store.
pub fn from_ntriples(text: &str) -> Result<IndexedStore, NtParseError> {
    let mut store = IndexedStore::new();
    load_ntriples(&mut store, text)?;
    Ok(store)
}

/// One parsed statement: a triple plus an optional named-graph label.
pub type Quad = (Term, Term, Term, Option<Term>);

/// Parse N-Triples / N-Quads text into a list of term triples with an
/// optional named-graph label — the backend-neutral form, validated
/// before any store is touched.
pub fn parse_ntriples(text: &str) -> Result<Vec<Quad>, NtParseError> {
    let mut triples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut pos = 0usize;
        let chars: Vec<char> = line.chars().collect();
        let s = parse_term(&chars, &mut pos, lineno + 1)?;
        skip_ws(&chars, &mut pos);
        let p = parse_term(&chars, &mut pos, lineno + 1)?;
        skip_ws(&chars, &mut pos);
        let o = parse_term(&chars, &mut pos, lineno + 1)?;
        skip_ws(&chars, &mut pos);
        // N-Quads: an optional graph label before the terminating dot.
        let graph = if pos < chars.len() && chars.get(pos) != Some(&'.') {
            let g = parse_term(&chars, &mut pos, lineno + 1)?;
            skip_ws(&chars, &mut pos);
            Some(g)
        } else {
            None
        };
        if chars.get(pos) != Some(&'.') {
            return Err(NtParseError {
                line: lineno + 1,
                message: "expected terminating '.'".into(),
            });
        }
        triples.push((s, p, o, graph));
    }
    Ok(triples)
}

/// Parse N-Triples / N-Quads text into an existing store.
pub fn load_ntriples<S: TripleStore + ?Sized>(
    store: &mut S,
    text: &str,
) -> Result<(), NtParseError> {
    for (s, p, o, graph) in parse_ntriples(text)? {
        match graph {
            Some(g) => store.insert_in(g, s, p, o),
            None => store.insert(s, p, o),
        };
    }
    Ok(())
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_term(chars: &[char], pos: &mut usize, line: usize) -> Result<Term, NtParseError> {
    skip_ws(chars, pos);
    let err = |message: &str| NtParseError {
        line,
        message: message.to_string(),
    };
    match chars.get(*pos) {
        Some('<') => {
            *pos += 1;
            let start = *pos;
            while chars.get(*pos).is_some_and(|&c| c != '>') {
                *pos += 1;
            }
            if chars.get(*pos) != Some(&'>') {
                return Err(err("unterminated IRI"));
            }
            let iri: String = chars[start..*pos].iter().collect();
            *pos += 1;
            Ok(Term::iri(iri))
        }
        Some('"') => {
            *pos += 1;
            let mut value = String::new();
            loop {
                match chars.get(*pos) {
                    Some('\\') => {
                        *pos += 1;
                        match chars.get(*pos) {
                            Some('"') => value.push('"'),
                            Some('\\') => value.push('\\'),
                            Some('n') => value.push('\n'),
                            Some('t') => value.push('\t'),
                            Some(&c) => value.push(c),
                            None => return Err(err("dangling escape")),
                        }
                        *pos += 1;
                    }
                    Some('"') => {
                        *pos += 1;
                        break;
                    }
                    Some(&c) => {
                        value.push(c);
                        *pos += 1;
                    }
                    None => return Err(err("unterminated literal")),
                }
            }
            // Ignore optional datatype/lang suffixes (^^<...> or @xx).
            if chars.get(*pos) == Some(&'^') {
                while chars.get(*pos).is_some_and(|&c| !c.is_whitespace()) {
                    *pos += 1;
                }
            } else if chars.get(*pos) == Some(&'@') {
                while chars.get(*pos).is_some_and(|&c| !c.is_whitespace()) {
                    *pos += 1;
                }
            }
            Ok(Term::lit(value))
        }
        Some('_') => {
            *pos += 1;
            if chars.get(*pos) != Some(&':') {
                return Err(err("expected ':' after '_' in blank node"));
            }
            *pos += 1;
            let start = *pos;
            while chars
                .get(*pos)
                .is_some_and(|&c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                *pos += 1;
            }
            Ok(Term::Blank(chars[start..*pos].iter().collect()))
        }
        _ => Err(err("expected term")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_triples() {
        let mut st = IndexedStore::new();
        st.insert(
            Term::iri("http://galo/qep/pop/5"),
            Term::iri("http://galo/qep/property/hasLowerCardinality"),
            Term::lit("19771"),
        );
        st.insert(
            Term::iri("http://galo/qep/pop/5"),
            Term::iri("http://galo/qep/property/hasHigherCardinality"),
            Term::lit("128500"),
        );
        st.insert(
            Term::iri("http://galo/qep/pop/5"),
            Term::iri("http://galo/qep/property/hasOutputStream"),
            Term::iri("http://galo/qep/pop/3"),
        );
        let text = to_ntriples(&st);
        let st2 = from_ntriples(&text).unwrap();
        assert_eq!(st2.len(), 3);
        for (s, p, o) in st.iter_terms() {
            assert!(st2.contains(s, p, o));
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# knowledge base export\n\n<http://a> <http://b> \"x\" .\n";
        let st = from_ntriples(text).unwrap();
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let mut st = IndexedStore::new();
        st.insert(
            Term::iri("http://a"),
            Term::iri("http://b"),
            Term::lit("say \"hi\"\nthen\\leave"),
        );
        let text = to_ntriples(&st);
        let st2 = from_ntriples(&text).unwrap();
        assert!(st2.contains(
            &Term::iri("http://a"),
            &Term::iri("http://b"),
            &Term::lit("say \"hi\"\nthen\\leave"),
        ));
    }

    #[test]
    fn blank_nodes_roundtrip() {
        let mut st = IndexedStore::new();
        st.insert(
            Term::Blank("b0".into()),
            Term::iri("http://p"),
            Term::lit("v"),
        );
        let st2 = from_ntriples(&to_ntriples(&st)).unwrap();
        assert_eq!(st2.len(), 1);
    }

    /// Sketch payloads serialize as long unbroken hex literals (hundreds
    /// of characters, no escapes); the parser must round-trip them
    /// byte-for-byte rather than truncating or splitting long literals.
    #[test]
    fn long_hex_literal_roundtrips() {
        let hex: String = (0..1024u32)
            .map(|i| char::from_digit(i % 16, 16).unwrap())
            .collect();
        let mut st = IndexedStore::new();
        st.insert(
            Term::iri("http://galo/qep/pop/5"),
            Term::iri("http://galo/qep/property/hasCardinalitySketch"),
            Term::lit(hex.clone()),
        );
        let text = to_ntriples(&st);
        let st2 = from_ntriples(&text).unwrap();
        assert!(st2.contains(
            &Term::iri("http://galo/qep/pop/5"),
            &Term::iri("http://galo/qep/property/hasCardinalitySketch"),
            &Term::lit(hex),
        ));
        // Stability: a second serialization is byte-identical.
        assert_eq!(to_ntriples(&st2), text);
    }

    #[test]
    fn missing_dot_is_an_error() {
        let e = from_ntriples("<http://a> <http://b> \"x\"").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("'.'"));
    }

    #[test]
    fn datatype_suffix_tolerated() {
        let st =
            from_ntriples("<http://a> <http://b> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .")
                .unwrap();
        assert!(st.contains(
            &Term::iri("http://a"),
            &Term::iri("http://b"),
            &Term::lit("42")
        ));
    }
}
