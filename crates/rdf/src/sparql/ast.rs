//! SPARQL abstract syntax — the subset GALO generates and evaluates.
//!
//! The matching engine emits queries of the shape in the paper's Figure 6:
//! a `SELECT` over result handlers, a basic graph pattern of triple
//! patterns (including `hasOutputStream` relationship handlers and, for
//! loosely-connected operators, property paths `p+`), and `FILTER`
//! constraints on internal handlers. Updates cover `INSERT DATA` and
//! `DELETE WHERE`, which is what knowledge-base maintenance needs.

use crate::term::Term;

/// Subject/object position: a variable or a ground term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermPattern {
    Var(String),
    Ground(Term),
}

impl TermPattern {
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Ground(_) => None,
        }
    }
}

/// Predicate position: a plain IRI or a property path over one IRI.
/// `Plus` is one-or-more steps, `Star` zero-or-more — the "recursive path
/// matching" SPARQL 1.1 feature the paper relies on (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathPattern {
    Direct(Term),
    Plus(Term),
    Star(Term),
}

impl PathPattern {
    pub fn iri(&self) -> &Term {
        match self {
            PathPattern::Direct(t) | PathPattern::Plus(t) | PathPattern::Star(t) => t,
        }
    }
}

/// One triple pattern in a basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub path: PathPattern,
    pub object: TermPattern,
}

/// Comparison operators in FILTER expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// FILTER expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Const(Term),
    /// `STR(expr)` — lexical form.
    Str(Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// Variables referenced anywhere in the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) => out.push(v),
            Expr::Const(_) => {}
            Expr::Str(e) | Expr::Not(e) => e.collect_vars(out),
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub distinct: bool,
    /// Projected variables; empty means `SELECT *`.
    pub vars: Vec<String>,
    pub patterns: Vec<TriplePattern>,
    pub filters: Vec<Expr>,
    /// Dataset scope: `WHERE { GRAPH <g> { … } }`. `None` matches the
    /// default graph (the pre-GRAPH behavior); `Some(g)` evaluates every
    /// pattern against named graph `g` only — e.g. one workload's tagging
    /// graph in the knowledge base.
    pub graph: Option<Term>,
    pub order_by: Option<String>,
    pub limit: Option<usize>,
}

/// An update request.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// `INSERT DATA { ground triples }`
    InsertData(Vec<(Term, Term, Term)>),
    /// `DELETE WHERE { patterns }` — removes every binding of the pattern.
    DeleteWhere(Vec<TriplePattern>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_variables_are_collected_in_order() {
        let e = Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Le,
                Box::new(Expr::Var("ih1".into())),
                Box::new(Expr::Const(Term::lit("8"))),
            )),
            Box::new(Expr::Cmp(
                CmpOp::Gt,
                Box::new(Expr::Str(Box::new(Expr::Var("pop_6".into())))),
                Box::new(Expr::Str(Box::new(Expr::Var("pop_8".into())))),
            )),
        );
        assert_eq!(e.variables(), vec!["ih1", "pop_6", "pop_8"]);
    }

    #[test]
    fn path_iri_access() {
        let t = Term::iri("http://p");
        assert_eq!(PathPattern::Plus(t.clone()).iri(), &t);
        assert_eq!(PathPattern::Direct(t.clone()).iri(), &t);
    }

    #[test]
    fn term_pattern_var_accessor() {
        assert_eq!(TermPattern::Var("x".into()).as_var(), Some("x"));
        assert_eq!(TermPattern::Ground(Term::lit("v")).as_var(), None);
    }
}
