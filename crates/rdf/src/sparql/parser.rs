//! SPARQL text parser for the GALO subset.

use std::collections::HashMap;
use std::fmt;

use crate::term::Term;

use super::ast::{CmpOp, Expr, PathPattern, SelectQuery, TermPattern, TriplePattern, Update};

/// Parse error with a byte-offset hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for SparqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SPARQL parse error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SparqlParseError {}

/// Parse a `SELECT` query.
pub fn parse_select(text: &str) -> Result<SelectQuery, SparqlParseError> {
    let mut p = P::new(text);
    let prefixes = p.parse_prefixes()?;
    p.prefixes = prefixes;
    let q = p.parse_select()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

/// Parse an update request (`INSERT DATA` / `DELETE WHERE`).
pub fn parse_update(text: &str) -> Result<Update, SparqlParseError> {
    let mut p = P::new(text);
    let prefixes = p.parse_prefixes()?;
    p.prefixes = prefixes;
    let u = p.parse_update()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after update"));
    }
    Ok(u)
}

/// A parsed `WHERE` group: triple patterns, filters, and the optional
/// `GRAPH` scope covering the whole group.
type WhereGroup = (Vec<TriplePattern>, Vec<Expr>, Option<Term>);

struct P<'a> {
    text: &'a str,
    chars: Vec<char>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl<'a> P<'a> {
    fn new(text: &'a str) -> Self {
        P {
            text,
            chars: text.chars().collect(),
            pos: 0,
            prefixes: HashMap::new(),
        }
    }

    fn err(&self, message: impl Into<String>) -> SparqlParseError {
        SparqlParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            if c.is_whitespace() {
                self.pos += 1;
            } else if c == '#' {
                while self.pos < self.chars.len() && self.chars[self.pos] != '\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), SparqlParseError> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    /// Case-insensitive keyword test; consumes on match.
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if end > self.chars.len() {
            return false;
        }
        let slice: String = self.chars[self.pos..end].iter().collect();
        if slice.eq_ignore_ascii_case(kw) {
            // Must not be a prefix of a longer identifier.
            let next = self.chars.get(end);
            if next.is_none_or(|c| !c.is_alphanumeric() && *c != '_') {
                self.pos = end;
                return true;
            }
        }
        false
    }

    fn parse_prefixes(&mut self) -> Result<HashMap<String, String>, SparqlParseError> {
        let mut prefixes = HashMap::new();
        loop {
            self.skip_ws();
            if !self.keyword("PREFIX") {
                break;
            }
            self.skip_ws();
            let name = self.parse_name()?;
            self.expect(':')?;
            self.skip_ws();
            let iri = self.parse_iriref()?;
            prefixes.insert(name, iri);
        }
        Ok(prefixes)
    }

    fn parse_name(&mut self) -> Result<String, SparqlParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected name"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn parse_iriref(&mut self) -> Result<String, SparqlParseError> {
        if !self.eat('<') {
            return Err(self.err("expected '<' opening IRI"));
        }
        let start = self.pos;
        while self.peek().is_some_and(|c| c != '>') {
            self.pos += 1;
        }
        let end = self.pos;
        if !self.eat('>') {
            return Err(self.err("unterminated IRI"));
        }
        Ok(self.chars[start..end].iter().collect())
    }

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlParseError> {
        if !self.keyword("SELECT") {
            return Err(self.err("expected SELECT"));
        }
        let distinct = self.keyword("DISTINCT");
        let mut vars = Vec::new();
        self.skip_ws();
        if self.eat('*') {
            // SELECT * — empty projection list means all variables.
        } else {
            loop {
                self.skip_ws();
                if self.peek() == Some('?') {
                    self.pos += 1;
                    vars.push(self.parse_name()?);
                } else {
                    break;
                }
            }
            if vars.is_empty() {
                return Err(self.err("expected projection variables or '*'"));
            }
        }
        if !self.keyword("WHERE") {
            return Err(self.err("expected WHERE"));
        }
        let (patterns, filters, graph) = self.parse_where_group()?;

        let mut order_by = None;
        if self.keyword("ORDER") {
            if !self.keyword("BY") {
                return Err(self.err("expected BY after ORDER"));
            }
            self.skip_ws();
            if !self.eat('?') {
                return Err(self.err("expected variable after ORDER BY"));
            }
            order_by = Some(self.parse_name()?);
        }
        let mut limit = None;
        if self.keyword("LIMIT") {
            self.skip_ws();
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            let digits: String = self.chars[start..self.pos].iter().collect();
            limit = Some(
                digits
                    .parse()
                    .map_err(|_| self.err("expected LIMIT count"))?,
            );
        }

        Ok(SelectQuery {
            distinct,
            vars,
            patterns,
            filters,
            graph,
            order_by,
            limit,
        })
    }

    fn parse_update(&mut self) -> Result<Update, SparqlParseError> {
        if self.keyword("INSERT") {
            if !self.keyword("DATA") {
                return Err(self.err("expected DATA after INSERT"));
            }
            let (patterns, filters) = self.parse_group()?;
            if !filters.is_empty() {
                return Err(self.err("FILTER not allowed in INSERT DATA"));
            }
            let mut triples = Vec::with_capacity(patterns.len());
            for p in patterns {
                let (TermPattern::Ground(s), PathPattern::Direct(pred), TermPattern::Ground(o)) =
                    (p.subject, p.path, p.object)
                else {
                    return Err(self.err("INSERT DATA requires ground triples"));
                };
                triples.push((s, pred, o));
            }
            Ok(Update::InsertData(triples))
        } else if self.keyword("DELETE") {
            if !self.keyword("WHERE") {
                return Err(self.err("expected WHERE after DELETE"));
            }
            let (patterns, filters) = self.parse_group()?;
            if !filters.is_empty() {
                return Err(self.err("FILTER not supported in DELETE WHERE"));
            }
            Ok(Update::DeleteWhere(patterns))
        } else {
            Err(self.err("expected INSERT DATA or DELETE WHERE"))
        }
    }

    /// A `WHERE` group, which may scope its whole pattern to one named
    /// graph: `{ GRAPH <g> { … } }`. `GRAPH` is a reserved word at the
    /// head of the group; mixing scoped and default-graph patterns in one
    /// group is not supported — the dataset is all-or-nothing, matching
    /// how `MatchConfig::dataset` scopes knowledge-base matching.
    fn parse_where_group(&mut self) -> Result<WhereGroup, SparqlParseError> {
        self.expect('{')?;
        if self.keyword("GRAPH") {
            let graph = self.parse_iri_term()?;
            let (patterns, filters) = self.parse_group()?;
            self.expect('}')?;
            return Ok((patterns, filters, Some(graph)));
        }
        let (patterns, filters) = self.parse_group_rest()?;
        Ok((patterns, filters, None))
    }

    fn parse_group(&mut self) -> Result<(Vec<TriplePattern>, Vec<Expr>), SparqlParseError> {
        self.expect('{')?;
        self.parse_group_rest()
    }

    /// The body of a group, after its opening `{` has been consumed.
    fn parse_group_rest(&mut self) -> Result<(Vec<TriplePattern>, Vec<Expr>), SparqlParseError> {
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            if self.keyword("FILTER") {
                self.expect('(')?;
                let e = self.parse_expr()?;
                self.expect(')')?;
                filters.push(e);
                self.skip_ws();
                self.eat('.');
                continue;
            }
            let subject = self.parse_term_pattern()?;
            self.skip_ws();
            let path = self.parse_path()?;
            let object = self.parse_term_pattern()?;
            patterns.push(TriplePattern {
                subject,
                path,
                object,
            });
            self.skip_ws();
            self.eat('.');
        }
        Ok((patterns, filters))
    }

    fn parse_path(&mut self) -> Result<PathPattern, SparqlParseError> {
        self.skip_ws();
        let iri = self.parse_iri_term()?;
        if self.eat('+') {
            Ok(PathPattern::Plus(iri))
        } else if self.eat('*') {
            Ok(PathPattern::Star(iri))
        } else {
            Ok(PathPattern::Direct(iri))
        }
    }

    fn parse_iri_term(&mut self) -> Result<Term, SparqlParseError> {
        self.skip_ws();
        if self.peek() == Some('<') {
            return Ok(Term::iri(self.parse_iriref()?));
        }
        // Prefixed name: prefix:local.
        let name = self.parse_name()?;
        if !self.eat(':') {
            return Err(self.err(format!("expected ':' after prefix '{name}'")));
        }
        let local = self.parse_name()?;
        let base = self
            .prefixes
            .get(&name)
            .ok_or_else(|| self.err(format!("unknown prefix '{name}'")))?;
        Ok(Term::iri(format!("{base}{local}")))
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlParseError> {
        self.skip_ws();
        match self.peek() {
            Some('?') => {
                self.pos += 1;
                Ok(TermPattern::Var(self.parse_name()?))
            }
            Some('<') => Ok(TermPattern::Ground(Term::iri(self.parse_iriref()?))),
            Some('"') | Some('\'') => Ok(TermPattern::Ground(self.parse_string_literal()?)),
            Some(c) if c.is_ascii_digit() || c == '-' => {
                Ok(TermPattern::Ground(self.parse_numeric_literal()?))
            }
            Some('_') => {
                self.pos += 1;
                if !self.eat(':') {
                    return Err(self.err("expected ':' in blank node"));
                }
                Ok(TermPattern::Ground(Term::Blank(self.parse_name()?)))
            }
            Some(_) => {
                // Bare word (e.g. NLJOIN in the paper's §3.1 example) or a
                // prefixed name — decide by the presence of ':'.
                let name = self.parse_name()?;
                if self.eat(':') {
                    let local = self.parse_name()?;
                    let base = self
                        .prefixes
                        .get(&name)
                        .ok_or_else(|| self.err(format!("unknown prefix '{name}'")))?;
                    Ok(TermPattern::Ground(Term::iri(format!("{base}{local}"))))
                } else {
                    Ok(TermPattern::Ground(Term::lit(name)))
                }
            }
            None => Err(self.err("expected term pattern")),
        }
    }

    fn parse_string_literal(&mut self) -> Result<Term, SparqlParseError> {
        let quote = self.peek().ok_or_else(|| self.err("expected string"))?;
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c) => {
                            s.push(match c {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            self.pos += 1;
                        }
                        None => return Err(self.err("dangling escape")),
                    }
                }
                Some(c) if c == quote => {
                    self.pos += 1;
                    break;
                }
                Some(c) => {
                    s.push(c);
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
        Ok(Term::lit(s))
    }

    fn parse_numeric_literal(&mut self) -> Result<Term, SparqlParseError> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+')
        {
            // Stop a trailing '+'/'.' that belongs to syntax, not the number.
            if (self.peek() == Some('+') || self.peek() == Some('.'))
                && !self
                    .chars
                    .get(self.pos + 1)
                    .is_some_and(|c| c.is_ascii_digit())
            {
                // Only consume '+' after an exponent marker.
                let prev = self.chars.get(self.pos.wrapping_sub(1));
                if !(self.peek() == Some('+') && matches!(prev, Some('e') | Some('E'))) {
                    break;
                }
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if text.parse::<f64>().is_err() {
            return Err(self.err(format!("bad numeric literal '{text}'")));
        }
        Ok(Term::lit(text))
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> Result<Expr, SparqlParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlParseError> {
        let mut lhs = self.parse_and()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') && self.chars.get(self.pos + 1) == Some(&'|') {
                self.pos += 2;
                let rhs = self.parse_and()?;
                lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlParseError> {
        let mut lhs = self.parse_cmp()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('&') && self.chars.get(self.pos + 1) == Some(&'&') {
                self.pos += 2;
                let rhs = self.parse_cmp()?;
                lhs = Expr::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, SparqlParseError> {
        let lhs = self.parse_primary()?;
        self.skip_ws();
        let op = match (self.peek(), self.chars.get(self.pos + 1)) {
            (Some('<'), Some('=')) => {
                self.pos += 2;
                CmpOp::Le
            }
            (Some('>'), Some('=')) => {
                self.pos += 2;
                CmpOp::Ge
            }
            (Some('!'), Some('=')) => {
                self.pos += 2;
                CmpOp::Ne
            }
            (Some('<'), _) => {
                self.pos += 1;
                CmpOp::Lt
            }
            (Some('>'), _) => {
                self.pos += 1;
                CmpOp::Gt
            }
            (Some('='), _) => {
                self.pos += 1;
                CmpOp::Eq
            }
            _ => return Ok(lhs),
        };
        let rhs = self.parse_primary()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(')')?;
                Ok(e)
            }
            Some('!') => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_primary()?)))
            }
            Some('?') => {
                self.pos += 1;
                Ok(Expr::Var(self.parse_name()?))
            }
            Some('"') | Some('\'') => Ok(Expr::Const(self.parse_string_literal()?)),
            Some(c) if c.is_ascii_digit() || c == '-' => {
                Ok(Expr::Const(self.parse_numeric_literal()?))
            }
            Some('<') => Ok(Expr::Const(Term::iri(self.parse_iriref()?))),
            Some(_) => {
                if self.keyword("STR") {
                    self.expect('(')?;
                    let e = self.parse_expr()?;
                    self.expect(')')?;
                    Ok(Expr::Str(Box::new(e)))
                } else {
                    Err(self.err(format!(
                        "unexpected token in expression near '{}'",
                        &self.text[self.text.len().min(self.pos)..]
                            .chars()
                            .take(12)
                            .collect::<String>()
                    )))
                }
            }
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure6_shape() {
        let q = parse_select(
            r#"
            PREFIX predURI: <http://galo/qep/property/>
            SELECT ?pop_Q3 ?pop_6 ?pop_4
            WHERE {
              ?pop_Q3 predURI:hasLowerRowSize ?ih1 .
              FILTER ( ?ih1 <= 8) .
              ?pop_Q3 predURI:hasHigherRowSize ?ih2 .
              FILTER ( ?ih2 >= 8) .
              FILTER (STR(?pop_6) > STR(?pop_8)) .
              ?pop_Q3 predURI:hasOutputStream ?pop_6 .
              ?pop_6 predURI:hasOutputStream ?pop_4 .
            }"#,
        )
        .unwrap();
        assert_eq!(q.vars, vec!["pop_Q3", "pop_6", "pop_4"]);
        assert_eq!(q.patterns.len(), 4);
        assert_eq!(q.filters.len(), 3);
        assert_eq!(
            q.patterns[0].path.iri().as_iri(),
            Some("http://galo/qep/property/hasLowerRowSize")
        );
    }

    #[test]
    fn parses_property_path_plus() {
        let q =
            parse_select("SELECT ?a WHERE { ?a <http://galo/qep/property/hasOutputStream>+ ?b . }")
                .unwrap();
        assert!(matches!(q.patterns[0].path, PathPattern::Plus(_)));
    }

    #[test]
    fn parses_select_star_distinct_order_limit() {
        let q = parse_select("SELECT DISTINCT * WHERE { ?s <http://p> ?o . } ORDER BY ?s LIMIT 10")
            .unwrap();
        assert!(q.distinct);
        assert!(q.vars.is_empty());
        assert_eq!(q.order_by.as_deref(), Some("s"));
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_bare_word_literal_object() {
        // Paper §3.1 writes object literals bare: "...hasPopType>NLJOIN".
        let q =
            parse_select("SELECT ?s WHERE { ?s <http://galo/qep/property/hasPopType> NLJOIN . }")
                .unwrap();
        assert_eq!(
            q.patterns[0].object,
            TermPattern::Ground(Term::lit("NLJOIN"))
        );
    }

    #[test]
    fn parses_insert_data() {
        let u = parse_update(
            r#"INSERT DATA {
                <http://galo/qep/pop/5> <http://galo/qep/property/hasLowerCardinality> "19771" .
                <http://galo/qep/pop/5> <http://galo/qep/property/hasHigherCardinality> "128500" .
            }"#,
        )
        .unwrap();
        match u {
            Update::InsertData(ts) => assert_eq!(ts.len(), 2),
            other => panic!("wrong update: {other:?}"),
        }
    }

    #[test]
    fn parses_delete_where() {
        // ?p in predicate position is not part of the subset — predicates
        // must be IRIs.
        parse_update("DELETE WHERE { ?s ?p ?o . }").unwrap_err();
        let ok = parse_update("DELETE WHERE { ?s <http://p> ?o . }").unwrap();
        assert!(matches!(ok, Update::DeleteWhere(ps) if ps.len() == 1));
    }

    #[test]
    fn insert_data_rejects_variables() {
        let e = parse_update("INSERT DATA { ?s <http://p> \"v\" . }").unwrap_err();
        assert!(e.message.contains("ground"));
    }

    #[test]
    fn numeric_literals_with_exponent() {
        let q = parse_select("SELECT ?s WHERE { ?s <http://p> 1.441e+06 . }").unwrap();
        assert_eq!(
            q.patterns[0].object,
            TermPattern::Ground(Term::lit("1.441e+06"))
        );
    }

    #[test]
    fn filter_boolean_combinators() {
        let q = parse_select(
            "SELECT ?x WHERE { ?x <http://p> ?v . FILTER(?v >= 1 && ?v <= 9 || !(?v = 5)) }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 1);
        assert!(matches!(q.filters[0], Expr::Or(_, _)));
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let e = parse_select("SELECT ?s WHERE { ?s bad:prop ?o . }").unwrap_err();
        assert!(e.message.contains("unknown prefix"));
    }
}
