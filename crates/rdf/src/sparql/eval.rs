//! SPARQL evaluation: basic graph patterns with backtracking, property
//! paths via breadth-first closure, and FILTER pruning as soon as a
//! filter's variables are bound.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::store::TripleStore;
use crate::term::{Term, TermId};

use super::ast::{CmpOp, Expr, PathPattern, SelectQuery, TermPattern, TriplePattern, Update};

/// Query solutions: projected variable names and one row of optional terms
/// per solution (a variable can be unbound only when projected but absent
/// from the pattern).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub vars: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

impl ResultSet {
    /// Binding of `var` in row `row`.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        let idx = self.vars.iter().position(|v| v == var)?;
        self.rows.get(row)?.get(idx)?.as_ref()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

/// Evaluate a `SELECT` query against a store.
pub fn evaluate<S: TripleStore + ?Sized>(store: &S, query: &SelectQuery) -> ResultSet {
    evaluate_seeded(store, query, &[])
}

/// Projected variable names of a query: its explicit projection, or every
/// pattern variable in order of first appearance for `SELECT *`.
pub fn projected_vars(query: &SelectQuery) -> Vec<String> {
    if !query.vars.is_empty() {
        return query.vars.clone();
    }
    let mut all_vars: Vec<String> = Vec::new();
    for p in &query.patterns {
        for v in [p.subject.as_var(), p.object.as_var()]
            .into_iter()
            .flatten()
        {
            if !all_vars.iter().any(|x| x == v) {
                all_vars.push(v.to_string());
            }
        }
    }
    all_vars
}

/// True when every ground term of the query's patterns — constants in
/// subject/object position, every predicate IRI, and the `GRAPH` scope
/// name if the query has one — is interned in the store. A pattern whose
/// constant was never interned can match nothing, so the whole basic
/// graph pattern is empty; callers can skip evaluation entirely (the
/// batched probe path pre-resolves constants this way).
pub fn constants_interned<S: TripleStore + ?Sized>(store: &S, query: &SelectQuery) -> bool {
    if let Some(g) = &query.graph {
        if store.term_id(g).is_none() {
            return false;
        }
    }
    query.patterns.iter().all(|p| {
        let grounded = |tp: &TermPattern| match tp {
            TermPattern::Ground(t) => store.term_id(t).is_some(),
            TermPattern::Var(_) => true,
        };
        store.term_id(p.path.iri()).is_some() && grounded(&p.subject) && grounded(&p.object)
    })
}

/// The query's dataset scope, resolved against the store: `Ok(None)` for
/// default-graph evaluation, `Ok(Some(g))` for a `GRAPH` scope that is
/// interned, `Err(())` for a scope naming a graph the store has never
/// seen (which can match nothing).
fn resolve_graph<S: TripleStore + ?Sized>(
    store: &S,
    query: &SelectQuery,
) -> Result<Option<TermId>, ()> {
    match &query.graph {
        None => Ok(None),
        Some(g) => match store.term_id(g) {
            Some(id) => Ok(Some(id)),
            None => Err(()),
        },
    }
}

/// [`TripleStore::scan`] under a dataset scope: the default graph, or one
/// named graph via [`TripleStore::scan_in`].
fn scoped_scan<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    s: Option<TermId>,
    p: Option<TermId>,
    o: Option<TermId>,
) -> Vec<(TermId, TermId, TermId)> {
    match graph {
        None => store.scan(s, p, o),
        Some(g) => store.scan_in(g, s, p, o),
    }
}

/// [`TripleStore::count`] under a dataset scope. Named graphs hold
/// tagging metadata and stay small, so materializing the scan for the
/// ordering heuristic is fine there.
fn scoped_count<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    s: Option<TermId>,
    p: Option<TermId>,
    o: Option<TermId>,
) -> usize {
    match graph {
        None => store.count(s, p, o),
        Some(g) => store.scan_in(g, s, p, o).len(),
    }
}

/// Evaluate a `SELECT` query with variables pre-bound to interned terms —
/// the per-candidate probe path binds `?tmpl` to one template IRI so every
/// `inTemplate` pattern becomes a keyed lookup instead of a KB-wide scan.
/// Solutions are exactly those of [`evaluate`] restricted to the seed.
pub fn evaluate_seeded<S: TripleStore + ?Sized>(
    store: &S,
    query: &SelectQuery,
    seed: &[(String, TermId)],
) -> ResultSet {
    let seed_vars: Vec<String> = seed.iter().map(|(v, _)| v.clone()).collect();
    let seed_ids: Vec<TermId> = seed.iter().map(|(_, id)| *id).collect();
    let prepared = prepare_seeded(store, query, &seed_vars);
    evaluate_prepared(store, &prepared, &seed_ids)
}

/// A query prepared for repeated evaluation against one store state:
/// pattern order, filter schedule and projection are computed once, so
/// evaluating the same probe for many seed bindings (one knowledge-base
/// candidate template each) pays only for the actual search.
#[derive(Debug)]
pub struct PreparedQuery<'q> {
    query: &'q SelectQuery,
    projected: Vec<String>,
    order: Vec<usize>,
    filters_at: Vec<Vec<&'q Expr>>,
    /// A filter references a variable that is neither seeded nor bound by
    /// any pattern: no evaluation can yield rows.
    unsatisfiable: bool,
    seed_vars: Vec<String>,
    /// Resolved dataset scope (`GRAPH` clause); `None` is the default
    /// graph. A scope naming an un-interned graph sets `unsatisfiable`.
    graph: Option<TermId>,
}

impl PreparedQuery<'_> {
    /// Projected variable names (the `vars` of every produced result set).
    pub fn projected(&self) -> &[String] {
        &self.projected
    }

    /// An empty result set with this query's projection.
    pub fn empty_result(&self) -> ResultSet {
        ResultSet {
            vars: self.projected.clone(),
            rows: Vec::new(),
        }
    }
}

/// Prepare a query for evaluation under seeds binding exactly `seed_vars`
/// (in that order). The preparation is valid as long as the store's
/// contents don't change — pattern ordering uses the store's counts.
pub fn prepare_seeded<'q, S: TripleStore + ?Sized>(
    store: &S,
    query: &'q SelectQuery,
    seed_vars: &[String],
) -> PreparedQuery<'q> {
    let projected = projected_vars(query);
    let (graph, graph_missing) = match resolve_graph(store, query) {
        Ok(g) => (g, false),
        Err(()) => (None, true),
    };

    // Order patterns most-constrained-first (static heuristic: more ground
    // positions first, then fewer matching triples for the ground parts).
    // Seeded variables count as bound from the start.
    let pre_bound: BTreeSet<&str> = seed_vars.iter().map(String::as_str).collect();
    let order = order_patterns(store, graph, &query.patterns, &pre_bound);

    // Attach each filter to the earliest step after which all its
    // variables are available: seeded variables at step 0, pattern-bound
    // variables right after their binding pattern. Filters over never-bound
    // variables reject rows (SPARQL's error-as-false semantics).
    let mut avail_at: HashMap<&str, usize> = HashMap::new();
    for v in &pre_bound {
        avail_at.insert(v, 0);
    }
    for (step, &pi) in order.iter().enumerate() {
        let p = &query.patterns[pi];
        for v in [p.subject.as_var(), p.object.as_var()]
            .into_iter()
            .flatten()
        {
            avail_at.entry(v).or_insert(step + 1);
        }
    }
    let mut unsatisfiable = graph_missing;
    let mut filters_at: Vec<Vec<&Expr>> = vec![Vec::new(); order.len() + 1];
    for f in &query.filters {
        let step = f
            .variables()
            .iter()
            .map(|v| avail_at.get(v.to_owned()).copied().unwrap_or(usize::MAX))
            .max()
            .unwrap_or(0);
        if step == usize::MAX {
            unsatisfiable = true;
            break;
        }
        filters_at[step.min(order.len())].push(f);
    }

    PreparedQuery {
        query,
        projected,
        order,
        filters_at,
        unsatisfiable,
        seed_vars: seed_vars.to_vec(),
        graph,
    }
}

/// Evaluate a prepared query for one seed (`seed_ids` parallel to the
/// `seed_vars` the query was prepared with).
pub fn evaluate_prepared<S: TripleStore + ?Sized>(
    store: &S,
    prepared: &PreparedQuery<'_>,
    seed_ids: &[TermId],
) -> ResultSet {
    assert_eq!(
        seed_ids.len(),
        prepared.seed_vars.len(),
        "seed ids must match the seed variables the query was prepared with"
    );
    if prepared.unsatisfiable {
        return prepared.empty_result();
    }
    let query = prepared.query;
    let projected = &prepared.projected;
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    let mut bindings: HashMap<String, TermId> = prepared
        .seed_vars
        .iter()
        .cloned()
        .zip(seed_ids.iter().copied())
        .collect();

    // Filters over no variables or only seeded variables evaluate
    // immediately.
    for f in &prepared.filters_at[0] {
        if !eval_filter(store, f, &bindings) {
            return prepared.empty_result();
        }
    }

    search(
        store,
        prepared.graph,
        query,
        &prepared.order,
        &prepared.filters_at,
        0,
        &mut bindings,
        &mut rows,
        projected,
    );

    if query.distinct {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        rows.retain(|r| {
            let key = row_key(r);
            seen.insert(key)
        });
    }
    if let Some(order_var) = &query.order_by {
        if let Some(idx) = projected.iter().position(|v| v == order_var) {
            rows.sort_by(|a, b| {
                let ka = a[idx].as_ref().map(|t| t.str_value().to_string());
                let kb = b[idx].as_ref().map(|t| t.str_value().to_string());
                ka.cmp(&kb)
            });
        }
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    ResultSet {
        vars: projected.clone(),
        rows,
    }
}

fn row_key(row: &[Option<Term>]) -> String {
    row.iter()
        .map(|t| t.as_ref().map(|t| t.to_string()).unwrap_or_default())
        .collect::<Vec<_>>()
        .join("\u{1}")
}

fn order_patterns<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    patterns: &[TriplePattern],
    pre_bound: &BTreeSet<&str>,
) -> Vec<usize> {
    // Static per-pattern match counts are bound-independent: compute once.
    let static_cost: Vec<usize> = patterns
        .iter()
        .map(|p| {
            let s = match &p.subject {
                TermPattern::Ground(t) => store.term_id(t),
                TermPattern::Var(_) => None,
            };
            let o = match &p.object {
                TermPattern::Ground(t) => store.term_id(t),
                TermPattern::Var(_) => None,
            };
            let pred = store.term_id(p.path.iri());
            // Paths are more expensive to evaluate than direct edges.
            let path_penalty = if matches!(p.path, PathPattern::Direct(_)) {
                0
            } else {
                1000
            };
            scoped_count(store, graph, s, pred, o) + path_penalty
        })
        .collect();

    // Expected fan-out of a pattern once one endpoint is bound: a bound
    // subject/object leaves only that node's neighbors as candidates, far
    // fewer than the predicate's full extent. Ranking bound-endpoint edge
    // patterns ahead of whole-extent enumerations is what keeps segment
    // matching polynomial (a type pattern enumerates every operator of
    // that type in the knowledge base; a bound edge enumerates ~2).
    const BOUND_FANOUT_EST: usize = 16;

    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut ordered = Vec::with_capacity(patterns.len());
    let mut bound: BTreeSet<&str> = pre_bound.clone();
    while !remaining.is_empty() {
        let free = |tp: &TermPattern, bound: &BTreeSet<&str>| match tp {
            TermPattern::Var(v) => usize::from(!bound.contains(v.as_str())),
            TermPattern::Ground(_) => 0,
        };
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &pi)| {
                let p = &patterns[pi];
                let free_vars = free(&p.subject, &bound) + free(&p.object, &bound);
                let positions = usize::from(matches!(p.subject, TermPattern::Var(_)))
                    + usize::from(matches!(p.object, TermPattern::Var(_)));
                // An endpoint is effectively bound if it is ground or an
                // already-bound variable.
                let cost = if free_vars < positions || free_vars == 0 {
                    static_cost[pi].min(BOUND_FANOUT_EST)
                } else {
                    static_cost[pi]
                };
                (free_vars, cost)
            })
            .expect("remaining non-empty");
        ordered.push(best);
        remaining.remove(pos);
        let p = &patterns[best];
        for v in [p.subject.as_var(), p.object.as_var()]
            .into_iter()
            .flatten()
        {
            bound.insert(v);
        }
    }
    ordered
}

#[allow(clippy::too_many_arguments)]
fn search<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    query: &SelectQuery,
    order: &[usize],
    filters_at: &[Vec<&Expr>],
    step: usize,
    bindings: &mut HashMap<String, TermId>,
    rows: &mut Vec<Vec<Option<Term>>>,
    projected: &[String],
) {
    if step == order.len() {
        let row: Vec<Option<Term>> = projected
            .iter()
            .map(|v| bindings.get(v).map(|&id| store.resolve(id).clone()))
            .collect();
        rows.push(row);
        return;
    }
    let pattern = &query.patterns[order[step]];
    for (s_id, o_id) in candidate_pairs(store, graph, pattern, bindings) {
        let mut added: Vec<String> = Vec::with_capacity(2);
        let mut consistent = true;
        for (tp, id) in [(&pattern.subject, s_id), (&pattern.object, o_id)] {
            if let TermPattern::Var(v) = tp {
                match bindings.get(v) {
                    Some(&existing) if existing != id => {
                        consistent = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        bindings.insert(v.clone(), id);
                        added.push(v.clone());
                    }
                }
            }
        }
        if consistent {
            let filters_ok = filters_at[step + 1]
                .iter()
                .all(|f| eval_filter(store, f, bindings));
            if filters_ok {
                search(
                    store,
                    graph,
                    query,
                    order,
                    filters_at,
                    step + 1,
                    bindings,
                    rows,
                    projected,
                );
            }
        }
        for v in added {
            bindings.remove(&v);
        }
    }
}

/// Enumerate (subject, object) id pairs satisfying one pattern under the
/// current bindings.
fn candidate_pairs<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    pattern: &TriplePattern,
    bindings: &HashMap<String, TermId>,
) -> Vec<(TermId, TermId)> {
    let resolve = |tp: &TermPattern| -> Resolution {
        match tp {
            TermPattern::Var(v) => match bindings.get(v) {
                Some(&id) => Resolution::Bound(id),
                None => Resolution::Free,
            },
            TermPattern::Ground(t) => match store.term_id(t) {
                Some(id) => Resolution::Bound(id),
                None => Resolution::Impossible,
            },
        }
    };
    let s = resolve(&pattern.subject);
    let o = resolve(&pattern.object);
    if matches!(s, Resolution::Impossible) || matches!(o, Resolution::Impossible) {
        return Vec::new();
    }
    let pred = match store.term_id(pattern.path.iri()) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let s_bound = match s {
        Resolution::Bound(id) => Some(id),
        _ => None,
    };
    let o_bound = match o {
        Resolution::Bound(id) => Some(id),
        _ => None,
    };

    match &pattern.path {
        PathPattern::Direct(_) => scoped_scan(store, graph, s_bound, Some(pred), o_bound)
            .into_iter()
            .map(|(s, _, o)| (s, o))
            .collect(),
        PathPattern::Plus(_) => path_pairs(store, graph, pred, s_bound, o_bound, false),
        PathPattern::Star(_) => path_pairs(store, graph, pred, s_bound, o_bound, true),
    }
}

enum Resolution {
    Bound(TermId),
    Free,
    Impossible,
}

/// (s, o) pairs connected by 1+ (`Plus`) or 0+ (`Star`) steps of `pred`.
fn path_pairs<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    pred: TermId,
    s: Option<TermId>,
    o: Option<TermId>,
    include_zero: bool,
) -> Vec<(TermId, TermId)> {
    match (s, o) {
        (Some(s), Some(o)) => {
            let reachable = forward_closure(store, graph, pred, s, include_zero);
            if reachable.contains(&o) {
                vec![(s, o)]
            } else {
                vec![]
            }
        }
        (Some(s), None) => forward_closure(store, graph, pred, s, include_zero)
            .into_iter()
            .map(|o| (s, o))
            .collect(),
        (None, Some(o)) => backward_closure(store, graph, pred, o, include_zero)
            .into_iter()
            .map(|s| (s, o))
            .collect(),
        (None, None) => {
            // All nodes participating in `pred` edges, paired with their
            // forward closures.
            let mut subjects: BTreeSet<TermId> = BTreeSet::new();
            for (s, _, o) in scoped_scan(store, graph, None, Some(pred), None) {
                subjects.insert(s);
                if include_zero {
                    subjects.insert(o);
                }
            }
            let mut out = Vec::new();
            for s in subjects {
                for o in forward_closure(store, graph, pred, s, include_zero) {
                    out.push((s, o));
                }
            }
            out
        }
    }
}

fn forward_closure<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    pred: TermId,
    start: TermId,
    include_zero: bool,
) -> BTreeSet<TermId> {
    let mut seen: BTreeSet<TermId> = BTreeSet::new();
    let mut queue: VecDeque<TermId> = VecDeque::new();
    if include_zero {
        seen.insert(start);
    }
    queue.push_back(start);
    let mut visited: BTreeSet<TermId> = BTreeSet::new();
    while let Some(cur) = queue.pop_front() {
        if !visited.insert(cur) {
            continue;
        }
        for (_, _, o) in scoped_scan(store, graph, Some(cur), Some(pred), None) {
            seen.insert(o);
            queue.push_back(o);
        }
    }
    seen
}

fn backward_closure<S: TripleStore + ?Sized>(
    store: &S,
    graph: Option<TermId>,
    pred: TermId,
    start: TermId,
    include_zero: bool,
) -> BTreeSet<TermId> {
    let mut seen: BTreeSet<TermId> = BTreeSet::new();
    let mut queue: VecDeque<TermId> = VecDeque::new();
    if include_zero {
        seen.insert(start);
    }
    queue.push_back(start);
    let mut visited: BTreeSet<TermId> = BTreeSet::new();
    while let Some(cur) = queue.pop_front() {
        if !visited.insert(cur) {
            continue;
        }
        for (s, _, _) in scoped_scan(store, graph, None, Some(pred), Some(cur)) {
            seen.insert(s);
            queue.push_back(s);
        }
    }
    seen
}

// ---- FILTER evaluation ----

#[derive(Debug, Clone)]
enum Val {
    T(Term),
    S(String),
    B(bool),
}

fn eval_filter<S: TripleStore + ?Sized>(
    store: &S,
    expr: &Expr,
    bindings: &HashMap<String, TermId>,
) -> bool {
    matches!(eval_expr(store, expr, bindings), Some(Val::B(true)))
}

fn eval_expr<S: TripleStore + ?Sized>(
    store: &S,
    expr: &Expr,
    bindings: &HashMap<String, TermId>,
) -> Option<Val> {
    match expr {
        Expr::Var(v) => bindings.get(v).map(|&id| Val::T(store.resolve(id).clone())),
        Expr::Const(t) => Some(Val::T(t.clone())),
        Expr::Str(e) => {
            let v = eval_expr(store, e, bindings)?;
            Some(Val::S(match v {
                Val::T(t) => t.str_value().to_string(),
                Val::S(s) => s,
                Val::B(b) => b.to_string(),
            }))
        }
        Expr::Cmp(op, a, b) => {
            let va = eval_expr(store, a, bindings)?;
            let vb = eval_expr(store, b, bindings)?;
            Some(Val::B(compare(*op, &va, &vb)?))
        }
        Expr::And(a, b) => {
            let Val::B(ba) = eval_expr(store, a, bindings)? else {
                return None;
            };
            if !ba {
                return Some(Val::B(false));
            }
            let Val::B(bb) = eval_expr(store, b, bindings)? else {
                return None;
            };
            Some(Val::B(bb))
        }
        Expr::Or(a, b) => {
            let Val::B(ba) = eval_expr(store, a, bindings)? else {
                return None;
            };
            if ba {
                return Some(Val::B(true));
            }
            let Val::B(bb) = eval_expr(store, b, bindings)? else {
                return None;
            };
            Some(Val::B(bb))
        }
        Expr::Not(e) => {
            let Val::B(b) = eval_expr(store, e, bindings)? else {
                return None;
            };
            Some(Val::B(!b))
        }
    }
}

fn numeric(v: &Val) -> Option<f64> {
    match v {
        Val::T(Term::Literal(l)) => l.as_number(),
        Val::S(s) => s.trim().parse().ok(),
        _ => None,
    }
}

fn stringy(v: &Val) -> String {
    match v {
        Val::T(t) => t.str_value().to_string(),
        Val::S(s) => s.clone(),
        Val::B(b) => b.to_string(),
    }
}

fn compare(op: CmpOp, a: &Val, b: &Val) -> Option<bool> {
    // Numeric comparison when both sides are numbers (SPARQL's numeric
    // coercion); otherwise codepoint string comparison of STR values.
    let ord = match (numeric(a), numeric(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y)?,
        _ => stringy(a).cmp(&stringy(b)),
    };
    Some(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// Apply an update; returns the number of triples inserted or removed.
pub fn apply_update<S: TripleStore + ?Sized>(store: &mut S, update: &Update) -> usize {
    match update {
        Update::InsertData(triples) => triples
            .iter()
            .filter(|(s, p, o)| store.insert(s.clone(), p.clone(), o.clone()))
            .count(),
        Update::DeleteWhere(patterns) => {
            let query = SelectQuery {
                distinct: false,
                vars: Vec::new(),
                patterns: patterns.clone(),
                filters: Vec::new(),
                graph: None,
                order_by: None,
                limit: None,
            };
            let solutions = evaluate(store, &query);
            let mut removed = 0;
            for row in 0..solutions.len() {
                for p in patterns {
                    let lookup = |tp: &TermPattern| -> Option<Term> {
                        match tp {
                            TermPattern::Ground(t) => Some(t.clone()),
                            TermPattern::Var(v) => solutions.get(row, v).cloned(),
                        }
                    };
                    if let (Some(s), Some(o)) = (lookup(&p.subject), lookup(&p.object)) {
                        if store.remove(&s, p.path.iri(), &o) {
                            removed += 1;
                        }
                    }
                }
            }
            removed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parser::{parse_select, parse_update};
    use crate::store::IndexedStore;

    fn prop(name: &str) -> Term {
        Term::iri(format!("http://galo/qep/property/{name}"))
    }

    fn pop(n: u32) -> Term {
        Term::iri(format!("http://galo/qep/pop/{n}"))
    }

    /// A small plan graph: 5 -> 4 -> 2, 3 -> 2; cardinalities attached.
    fn plan_store() -> IndexedStore {
        let mut st = IndexedStore::new();
        for (a, b) in [(5u32, 4u32), (4, 2), (3, 2)] {
            st.insert(pop(a), prop("hasOutputStream"), pop(b));
        }
        st.insert(pop(2), prop("hasPopType"), Term::lit("NLJOIN"));
        st.insert(pop(4), prop("hasPopType"), Term::lit("NLJOIN"));
        st.insert(pop(3), prop("hasPopType"), Term::lit("IXSCAN"));
        st.insert(pop(5), prop("hasPopType"), Term::lit("IXSCAN"));
        st.insert(pop(5), prop("hasEstimateCardinality"), Term::lit("19.734"));
        st.insert(
            pop(3),
            prop("hasEstimateCardinality"),
            Term::lit("0.994903"),
        );
        st
    }

    #[test]
    fn bgp_join_over_two_patterns() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?a ?b WHERE { ?a p:hasOutputStream ?b . ?b p:hasPopType NLJOIN . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn filter_numeric_range() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { ?s p:hasEstimateCardinality ?c . FILTER(?c >= 1 && ?c <= 100) }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "s"), Some(&pop(5)));
    }

    #[test]
    fn filter_str_uniqueness() {
        // The paper's uniqueness idiom: FILTER(STR(?a) > STR(?b)).
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?a ?b WHERE { ?a p:hasPopType NLJOIN . ?b p:hasPopType NLJOIN . \
             FILTER(STR(?a) > STR(?b)) }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        // Of the 4 (a,b) combinations only one has a strictly greater IRI.
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn property_path_plus_reaches_transitively() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?d WHERE { <http://galo/qep/pop/5> p:hasOutputStream+ ?d . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        let got: BTreeSet<String> = (0..rs.len())
            .map(|i| rs.get(i, "d").unwrap().str_value().to_string())
            .collect();
        assert!(got.contains("http://galo/qep/pop/4"));
        assert!(got.contains("http://galo/qep/pop/2"));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn property_path_star_includes_zero_steps() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?d WHERE { <http://galo/qep/pop/5> p:hasOutputStream* ?d . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 3); // 5 itself, 4, 2.
    }

    #[test]
    fn path_with_bound_object() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { ?s p:hasOutputStream+ <http://galo/qep/pop/2> . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 3); // 5, 4, 3 all reach 2.
    }

    #[test]
    fn distinct_order_limit() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT DISTINCT ?t WHERE { ?s p:hasPopType ?t . } ORDER BY ?t LIMIT 5",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(0, "t").unwrap().str_value(), "IXSCAN");
        assert_eq!(rs.get(1, "t").unwrap().str_value(), "NLJOIN");
    }

    #[test]
    fn unbound_filter_variable_yields_no_rows() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { ?s p:hasPopType NLJOIN . FILTER(?zzz > 1) }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
    }

    #[test]
    fn ground_pattern_with_unknown_term_matches_nothing() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { ?s p:hasPopType MYSTERY . }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
    }

    #[test]
    fn shared_variable_must_agree_across_patterns() {
        let st = plan_store();
        // ?x must be both the source of an edge into 2 and an IXSCAN.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?x WHERE { ?x p:hasOutputStream <http://galo/qep/pop/2> . \
             ?x p:hasPopType IXSCAN . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "x"), Some(&pop(3)));
    }

    #[test]
    fn seeded_evaluation_equals_filtered_full_evaluation() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?a ?b WHERE { ?a p:hasOutputStream ?b . ?b p:hasPopType ?t . }",
        )
        .unwrap();
        let full = evaluate(&st, &q);
        for target in [2u32, 4] {
            let id = st.term_id(&pop(target)).unwrap();
            let seeded = evaluate_seeded(&st, &q, &[("b".to_string(), id)]);
            let expect: Vec<_> = (0..full.len())
                .filter(|&row| full.get(row, "b") == Some(&pop(target)))
                .map(|row| full.get(row, "a").cloned())
                .collect();
            assert_eq!(seeded.len(), expect.len());
            for row in 0..seeded.len() {
                assert_eq!(seeded.get(row, "b"), Some(&pop(target)));
                assert!(expect.contains(&seeded.get(row, "a").cloned()));
            }
        }
    }

    #[test]
    fn seeded_variable_satisfies_filters_at_step_zero() {
        let st = plan_store();
        // The filter references only the seeded variable: with a seed it
        // must evaluate immediately, not reject rows as never-bound.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s ?c WHERE { ?s p:hasEstimateCardinality ?c . \
             FILTER(STR(?s) != \"x\") }",
        )
        .unwrap();
        let id = st.term_id(&pop(5)).unwrap();
        let rs = evaluate_seeded(&st, &q, &[("s".to_string(), id)]);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "c").unwrap().str_value(), "19.734");
    }

    #[test]
    fn constants_interned_detects_unknown_terms() {
        let st = plan_store();
        let known = parse_select(
            "PREFIX p: <http://galo/qep/property/> SELECT ?s WHERE { ?s p:hasPopType NLJOIN . }",
        )
        .unwrap();
        assert!(constants_interned(&st, &known));
        let unknown_object = parse_select(
            "PREFIX p: <http://galo/qep/property/> SELECT ?s WHERE { ?s p:hasPopType MYSTERY . }",
        )
        .unwrap();
        assert!(!constants_interned(&st, &unknown_object));
        let unknown_pred = parse_select(
            "PREFIX p: <http://galo/qep/property/> SELECT ?s WHERE { ?s p:neverSeen ?o . }",
        )
        .unwrap();
        assert!(!constants_interned(&st, &unknown_pred));
    }

    #[test]
    fn insert_data_update_applies() {
        let mut st = plan_store();
        let before = st.len();
        let u = parse_update(
            "INSERT DATA { <http://galo/qep/pop/9> \
             <http://galo/qep/property/hasPopType> \"HSJOIN\" . }",
        )
        .unwrap();
        assert_eq!(apply_update(&mut st, &u), 1);
        assert_eq!(st.len(), before + 1);
        // Re-inserting is a no-op.
        assert_eq!(apply_update(&mut st, &u), 0);
    }

    #[test]
    fn delete_where_removes_matches() {
        let mut st = plan_store();
        let u = parse_update(
            "PREFIX p: <http://galo/qep/property/> \
             DELETE WHERE { ?s p:hasOutputStream ?o . }",
        )
        .unwrap();
        let removed = apply_update(&mut st, &u);
        assert_eq!(removed, 3);
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> SELECT ?s WHERE { ?s p:hasOutputStream ?o . }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
    }

    /// Store with a default graph plus two named graphs holding disjoint
    /// tag sets — the shape the knowledge base uses for per-workload
    /// template tagging.
    fn graph_store() -> IndexedStore {
        let mut st = plan_store();
        let g1 = Term::iri("http://galo/graph/w1");
        let g2 = Term::iri("http://galo/graph/w2");
        st.insert_in(g1.clone(), pop(2), prop("inWorkload"), Term::lit("w1"));
        st.insert_in(g1.clone(), pop(3), prop("inWorkload"), Term::lit("w1"));
        st.insert_in(g1, pop(2), prop("feeds"), pop(4));
        st.insert_in(g2, pop(4), prop("inWorkload"), Term::lit("w2"));
        st
    }

    #[test]
    fn graph_clause_scopes_to_one_named_graph() {
        let st = graph_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { GRAPH <http://galo/graph/w1> { ?s p:inWorkload ?w . } }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 2);
        // The other graph's tag is invisible under this scope.
        let got: BTreeSet<&Term> = (0..rs.len()).map(|i| rs.get(i, "s").unwrap()).collect();
        assert!(got.contains(&pop(2)) && got.contains(&pop(3)));
    }

    #[test]
    fn graph_clause_hides_default_graph_triples() {
        let st = graph_store();
        // hasPopType lives only in the default graph.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { GRAPH <http://galo/graph/w1> { ?s p:hasPopType ?t . } }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
        // And without the scope, named-graph tags are invisible.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { ?s p:inWorkload ?w . }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
    }

    #[test]
    fn graph_clause_with_unknown_graph_is_empty() {
        let st = graph_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s WHERE { GRAPH <http://galo/graph/nope> { ?s p:inWorkload ?w . } }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
        assert!(!constants_interned(&st, &q));
    }

    #[test]
    fn graph_scoped_seeded_probe_equals_text_evaluation() {
        // The probe ≡ text differential under dataset scope: the prepared
        // seeded path and the full text path must agree per binding.
        let st = graph_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?s ?w WHERE { GRAPH <http://galo/graph/w1> { ?s p:inWorkload ?w . } }",
        )
        .unwrap();
        let full = evaluate(&st, &q);
        assert_eq!(full.len(), 2);
        for target in [2u32, 3, 4] {
            let id = st.term_id(&pop(target)).unwrap();
            let seeded = evaluate_seeded(&st, &q, &[("s".to_string(), id)]);
            let expect: Vec<_> = (0..full.len())
                .filter(|&row| full.get(row, "s") == Some(&pop(target)))
                .collect();
            assert_eq!(seeded.len(), expect.len(), "pop {target}");
        }
    }

    #[test]
    fn graph_clause_scopes_property_paths() {
        let st = graph_store();
        // feeds lives only in w1: 2 -> 4, one hop, so + reaches exactly 4.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?d WHERE { GRAPH <http://galo/graph/w1> \
             { <http://galo/qep/pop/2> p:feeds+ ?d . } }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(0, "d"), Some(&pop(4)));
        // Default-graph evaluation of the same path sees nothing.
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT ?d WHERE { <http://galo/qep/pop/2> p:feeds+ ?d . }",
        )
        .unwrap();
        assert!(evaluate(&st, &q).is_empty());
    }

    #[test]
    fn select_star_projects_all_pattern_variables() {
        let st = plan_store();
        let q = parse_select(
            "PREFIX p: <http://galo/qep/property/> \
             SELECT * WHERE { ?a p:hasOutputStream ?b . }",
        )
        .unwrap();
        let rs = evaluate(&st, &q);
        assert_eq!(rs.vars, vec!["a", "b"]);
        assert_eq!(rs.len(), 3);
    }
}
