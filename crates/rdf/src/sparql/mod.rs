//! SPARQL subset: AST, parser and evaluator.

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{CmpOp, Expr, PathPattern, SelectQuery, TermPattern, TriplePattern, Update};
pub use eval::{
    apply_update, constants_interned, evaluate, evaluate_prepared, evaluate_seeded, prepare_seeded,
    projected_vars, PreparedQuery, ResultSet,
};
pub use parser::{parse_select, parse_update, SparqlParseError};
