//! Sampling strategies (`proptest::sample`).

use crate::strategy::{Arbitrary, Strategy};
use crate::test_runner::TestRng;

/// An index into a collection whose size is only known at use time
/// (`proptest::sample::Index`). Obtain one with `any::<Index>()`.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Resolve against a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.next_u64(),
        }
    }
}

/// Uniform choice from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.below(self.options.len() as u64) as usize;
        Some(self.options[pick].clone())
    }
}
