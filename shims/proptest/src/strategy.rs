//! The [`Strategy`] trait, its combinators, and strategies for primitive
//! types, ranges, tuples and regex-like string patterns.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// How many times a filtered or composite strategy retries locally before
/// reporting a rejection to the runner.
const LOCAL_REJECT_RETRIES: usize = 100;

/// A generator of values of one type.
///
/// `generate` returns `None` when a filter rejected the candidate; the
/// test runner retries the whole case. Shrinking is minimal by design
/// (see [`Strategy::shrink`]): collection strategies try element drops
/// and length halving, numeric range strategies halve toward the range
/// start, and everything else reports no candidates.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Shrink candidates for a failing `value`, best candidates first.
    /// The default is no shrinking; the [`minimize`] search (driven by
    /// the `proptest!` macro after a case fails) repeatedly replaces the
    /// failing input with the first candidate that still fails, so a
    /// reported counterexample is near-minimal under these moves:
    ///
    /// * numeric ranges: the range start, then the halfway point toward
    ///   it (repeated halving converges log-fast);
    /// * collections: the first and second half of the vector, then each
    ///   single-element drop, then per-element shrinks;
    /// * filters: the source's candidates that still satisfy the
    ///   predicate; tuples: component-wise candidates.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Keep only values satisfying `pred`. The reason string is carried
    /// for API compatibility; rejection reporting does not use it.
    fn prop_filter<R, F>(self, _reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, pred }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// maps to.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Build recursive values: `self` is the leaf strategy, `branch` maps
    /// an inner strategy to a composite one. `depth` bounds recursion;
    /// the size/branch hints are accepted for API compatibility.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), composite]).boxed();
        }
        current
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Cloneable type-erased strategy (`proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.inner.shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            match self.source.generate(rng) {
                Some(v) if (self.pred)(&v) => return Some(v),
                _ => continue,
            }
        }
        None
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Only candidates that still satisfy the filter are valid inputs.
        self.source
            .shrink(value)
            .into_iter()
            .filter(|v| (self.pred)(v))
            .collect()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let intermediate = self.source.generate(rng)?;
        (self.f)(intermediate).generate(rng)
    }
}

/// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Always the same value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---- any::<T>() ----

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> Option<A> {
        Some(A::arbitrary(rng))
    }
}

/// The canonical strategy for `A` (`proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns cover the full domain, NaN and infinities
        // included, like proptest's full-range float strategy.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

// ---- numeric ranges ----

/// Halving shrink for an integer drawn from a range starting at `lo`:
/// the start itself, then the halfway point toward it.
fn shrink_int(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v != lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2;
        if mid != lo && mid != v {
            out.push(mid);
        }
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + off as i128) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                Some((lo as i128 + off as i128) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Halving shrink for a float drawn from a range starting at `lo`.
fn shrink_float(lo: f64, v: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if v != lo && v.is_finite() {
        out.push(lo);
        let mid = lo + (v - lo) / 2.0;
        if mid != lo && mid != v {
            out.push(mid);
        }
    }
    out
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                Some(self.start + (rng.unit_f64() as $t) * (self.end - self.start))
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(self.start as f64, *value as f64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                Some(lo + (rng.unit_f64() as $t) * (hi - lo))
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*self.start() as f64, *value as f64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples ----

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---- shrinking search ----

/// Cap on candidate evaluations during one [`minimize`] search so a slow
/// property body cannot turn a failure into a hang.
const MAX_SHRINK_ATTEMPTS: usize = 1024;

/// Serializes the `proptest!` macro's panic-hook swap across the test
/// binary's threads: `cargo test` runs tests concurrently, and two
/// overlapping take-hook/set-hook/restore sequences could otherwise
/// leave the silencing hook installed for the rest of the process (one
/// test "restoring" the other's silencer). Held for the whole shrink
/// phase of one failing case.
pub fn shrink_hook_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A panic while holding the lock (the shrink phase catches all of
    // its own panics, but stay defensive) poisons it; the hook state is
    // swap-restored symmetrically either way, so just take the guard.
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Greedy shrink search: starting from a `failing` input, repeatedly
/// replace it with the first [`Strategy::shrink`] candidate that still
/// makes `fails` return true, until no candidate fails (a local minimum)
/// or the attempt budget runs out. Returns the minimized input and how
/// many successful shrink steps were taken.
///
/// The `proptest!` macro calls this after a case fails, with `fails`
/// re-running the property body under `catch_unwind`, then re-runs the
/// minimized case un-caught so the panic the user sees carries the
/// near-minimal counterexample.
pub fn minimize<S: Strategy>(
    strategy: &S,
    mut failing: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> (S::Value, usize) {
    let mut steps = 0usize;
    let mut attempts = 0usize;
    'search: loop {
        for cand in strategy.shrink(&failing) {
            attempts += 1;
            if attempts > MAX_SHRINK_ATTEMPTS {
                break 'search;
            }
            if fails(&cand) {
                failing = cand;
                steps += 1;
                continue 'search;
            }
        }
        break;
    }
    (failing, steps)
}

/// Pin a case-running closure's argument to `strategy`'s value type —
/// the `proptest!` macro cannot name the combined tuple type, and the
/// closure's first call site is nested too deeply for inference.
pub fn case_runner<S: Strategy, F: Fn(S::Value)>(_strategy: &S, f: F) -> F {
    f
}

// ---- regex-like string patterns ----

/// `&str` patterns are regex-like string strategies, supporting the
/// subset this workspace uses: literal characters, character classes with
/// ranges (`[a-z0-9]`, `[ -~]`), groups, and `{m}` / `{m,n}` / `?` / `*` /
/// `+` quantifiers (unbounded quantifiers are capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let pattern = Pattern::parse(self);
        let mut out = String::new();
        pattern.generate_into(rng, &mut out);
        Some(out)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        self.as_str().generate(rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; a lone char is a degenerate range.
    Class(Vec<(char, char)>),
    Group(Pattern),
}

#[derive(Debug, Clone)]
struct Pattern {
    /// Atoms with repetition bounds `[lo, hi]`.
    atoms: Vec<(Atom, u32, u32)>,
}

impl Pattern {
    fn parse(text: &str) -> Pattern {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let pattern = Self::parse_seq(&chars, &mut pos, text);
        assert!(
            pos == chars.len(),
            "unsupported regex pattern {text:?} (stopped at byte {pos})"
        );
        pattern
    }

    fn parse_seq(chars: &[char], pos: &mut usize, whole: &str) -> Pattern {
        let mut atoms = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            let atom = match c {
                ')' => break,
                '(' => {
                    *pos += 1;
                    let inner = Self::parse_seq(chars, pos, whole);
                    assert_eq!(chars.get(*pos), Some(&')'), "unclosed group in {whole:?}");
                    *pos += 1;
                    Atom::Group(inner)
                }
                '[' => {
                    *pos += 1;
                    let mut ranges = Vec::new();
                    while let Some(&cc) = chars.get(*pos) {
                        if cc == ']' {
                            break;
                        }
                        let lo = cc;
                        *pos += 1;
                        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                            *pos += 1;
                            let hi = *chars.get(*pos).expect("dangling '-' in class");
                            *pos += 1;
                            assert!(lo <= hi, "inverted class range in {whole:?}");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert_eq!(chars.get(*pos), Some(&']'), "unclosed class in {whole:?}");
                    *pos += 1;
                    assert!(!ranges.is_empty(), "empty class in {whole:?}");
                    Atom::Class(ranges)
                }
                '\\' => {
                    *pos += 1;
                    let escaped = *chars.get(*pos).expect("dangling escape");
                    *pos += 1;
                    match escaped {
                        'd' => Atom::Class(vec![('0', '9')]),
                        'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                        other => Atom::Literal(other),
                    }
                }
                other => {
                    *pos += 1;
                    Atom::Literal(other)
                }
            };
            let (lo, hi) = Self::parse_quantifier(chars, pos, whole);
            atoms.push((atom, lo, hi));
        }
        Pattern { atoms }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, whole: &str) -> (u32, u32) {
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut lo = String::new();
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    lo.push(chars[*pos]);
                    *pos += 1;
                }
                let lo: u32 = lo.parse().expect("quantifier lower bound");
                let hi = if chars.get(*pos) == Some(&',') {
                    *pos += 1;
                    let mut hi = String::new();
                    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    hi.parse().expect("quantifier upper bound")
                } else {
                    lo
                };
                assert_eq!(
                    chars.get(*pos),
                    Some(&'}'),
                    "unclosed quantifier in {whole:?}"
                );
                *pos += 1;
                assert!(lo <= hi, "inverted quantifier in {whole:?}");
                (lo, hi)
            }
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
        for (atom, lo, hi) in &self.atoms {
            let count = *lo as u64 + rng.below((*hi - *lo) as u64 + 1);
            for _ in 0..count {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        // Weight ranges by size for uniformity over chars.
                        let total: u64 =
                            ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
                        let mut pick = rng.below(total);
                        for (a, b) in ranges {
                            let size = *b as u64 - *a as u64 + 1;
                            if pick < size {
                                out.push(
                                    char::from_u32(*a as u32 + pick as u32).expect("class char"),
                                );
                                break;
                            }
                            pick -= size;
                        }
                    }
                    Atom::Group(inner) => inner.generate_into(rng, out),
                }
            }
        }
    }
}
