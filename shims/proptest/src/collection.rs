//! Collection strategies (`proptest::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }

    /// Length halving first (either half of the vector), then every
    /// single-element drop, then per-element shrinks — all respecting
    /// the strategy's lower size bound.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        let half = len / 2;
        if half >= self.size.lo && half < len {
            out.push(value[..half].to_vec());
            if half > 0 {
                // Skipped when `half == 0`: the second "half" would be
                // the whole vector, a no-op candidate the greedy search
                // would accept forever.
                out.push(value[half..].to_vec());
            }
        }
        if len > self.size.lo {
            for i in 0..len {
                let mut dropped = value.clone();
                dropped.remove(i);
                out.push(dropped);
            }
        }
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
