//! Collection strategies (`proptest::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}
