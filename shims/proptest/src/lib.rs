//! Offline subset of the `proptest` crate.
//!
//! The container has no crates.io access, so the workspace vendors the
//! slice of proptest its property tests use: the [`strategy::Strategy`]
//! trait with
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, strategies for numeric ranges, tuples, regex-like string
//! patterns, collections, samples, options and booleans, plus the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//! * **Minimal shrinking.** A failing case is greedily minimized with
//!   element-drop and length-halving moves for collections and halving
//!   toward the range start for numerics (see [`strategy::minimize`]),
//!   then re-run un-caught so the reported panic carries the near-minimal
//!   counterexample. `prop_map`/`prop_flat_map` outputs do not shrink
//!   (the transforms are not invertible).
//! * **Deterministic seeding.** Each test's RNG is seeded from the test
//!   name, so runs are reproducible without a persistence file.

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod option;
pub mod sample;

/// `bool`-valued strategies (`proptest::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// The `prop::` umbrella module (`proptest::prelude::prop`).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property test function: the expansion target of [`proptest!`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
                // One combined tuple strategy: generation draws from the
                // RNG in parameter order (the same stream as generating
                // each parameter separately), and shrinking works
                // component-wise over the tuple.
                let strategies = ($($strat,)+);
                // Bodies run in a closure returning `Result` so that
                // `return Ok(())` (an early pass) works as in real
                // proptest. Assertion macros panic instead of returning
                // `Err`, so the error type is free.
                let run_case = $crate::strategy::case_runner(&strategies, |case| {
                    let ($($pat,)+) = case;
                    #[allow(clippy::redundant_closure_call)]
                    let _outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                });
                let mut cases_run = 0u32;
                let mut rejects = 0u32;
                while cases_run < config.cases {
                    let vals =
                        match $crate::strategy::Strategy::generate(&strategies, &mut rng) {
                            Some(value) => value,
                            None => {
                                rejects += 1;
                                assert!(
                                    rejects < 65_536,
                                    "strategy rejected too many inputs in {}",
                                    stringify!($name),
                                );
                                continue;
                            }
                        };
                    let failed = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run_case(vals.clone())),
                    )
                    .is_err();
                    if failed {
                        // Shrink silently (element drops + halving), then
                        // re-run the minimal case un-caught so the panic
                        // the user sees reports the minimized inputs. The
                        // global-hook swap is serialized across threads so
                        // two concurrently failing tests cannot leave the
                        // silencing hook installed for the process.
                        let hook_guard = $crate::strategy::shrink_hook_lock();
                        let prev_hook = ::std::panic::take_hook();
                        ::std::panic::set_hook(::std::boxed::Box::new(|_| {}));
                        let (minimal, steps) =
                            $crate::strategy::minimize(&strategies, vals, |case| {
                                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                                    || run_case(case.clone()),
                                ))
                                .is_err()
                            });
                        ::std::panic::set_hook(prev_hook);
                        ::std::mem::drop(hook_guard);
                        eprintln!(
                            "proptest shim: {} failed; shrank the case over {} step(s); \
                             re-running the minimized case",
                            stringify!($name),
                            steps,
                        );
                        run_case(minimal);
                        panic!(
                            "proptest shim: the minimized case stopped failing — \
                             nondeterministic property in {}",
                            stringify!($name),
                        );
                    }
                    cases_run += 1;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Union of strategies with the same value type; each case picks one arm
/// uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion macros. Without shrinking these are plain asserts: a failure
/// panics with the formatted message and fails the test case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("lib", "ranges");
        let strat = (0u8..12, -50i64..50, 0.0f64..1.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng).unwrap();
            assert!(a < 12);
            assert!((-50..50).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn string_pattern_strategy_matches_shape() {
        let mut rng = crate::test_runner::TestRng::for_test("lib", "strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng).unwrap();
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = Strategy::generate(&"[a-z]{1,3}(/[a-z0-9]{1,4}){0,2}", &mut rng).unwrap();
            assert!(p.split('/').count() <= 3, "{p:?}");

            let t = Strategy::generate(&"[ -~]{0,12}", &mut rng).unwrap();
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn filter_and_oneof_obey_predicates() {
        let mut rng = crate::test_runner::TestRng::for_test("lib", "filter");
        let strat = prop_oneof![
            (0i32..100).prop_filter("even", |v| v % 2 == 0),
            (1000i32..2000).prop_map(|v| v),
        ];
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng).unwrap();
            assert!(v % 2 == 0 || (1000..2000).contains(&v));
        }
    }

    #[test]
    fn collection_vec_and_sample_index() {
        let mut rng = crate::test_runner::TestRng::for_test("lib", "vec");
        let strat = prop::collection::vec(0u32..10, 1..40);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng).unwrap();
            assert!((1..40).contains(&v.len()));
            let idx = Strategy::generate(&any::<prop::sample::Index>(), &mut rng).unwrap();
            assert!(idx.index(v.len()) < v.len());
        }
        // Fixed-size form.
        let fixed = prop::collection::vec(0u32..10, 7usize);
        assert_eq!(Strategy::generate(&fixed, &mut rng).unwrap().len(), 7);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::for_test("lib", "recursive");
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng).unwrap();
            assert!(depth(&t) <= 4, "depth {} too deep", depth(&t));
        }
    }

    #[test]
    fn minimize_halves_numerics_to_the_failure_boundary() {
        // Failure: v >= 10. Halving from anywhere lands within 2x of the
        // boundary (the last failing halving step before candidates pass).
        let strat = 0u32..1000;
        let (minimal, steps) = crate::strategy::minimize(&strat, 777, |&v| v >= 10);
        assert!(minimal >= 10, "minimized value must still fail");
        assert!(minimal < 20, "near-minimal expected, got {minimal}");
        assert!(steps >= 1);
    }

    #[test]
    fn minimize_drops_elements_and_shrinks_the_survivor() {
        // Failure: any element >= 50. Minimal counterexample under
        // element-drop + halving: a single element close to 50.
        let strat = prop::collection::vec(0u64..1000, 0..20);
        let failing = vec![3, 999, 7, 812, 60, 4];
        let fails = |v: &Vec<u64>| v.iter().any(|&x| x >= 50);
        let (minimal, _) = crate::strategy::minimize(&strat, failing, fails);
        assert_eq!(
            minimal.len(),
            1,
            "all passing elements dropped: {minimal:?}"
        );
        assert!((50..100).contains(&minimal[0]), "near-minimal: {minimal:?}");
    }

    #[test]
    fn minimize_shrinks_tuples_component_wise() {
        let strat = (0i64..100, prop::collection::vec(0u8..10, 0..8));
        let fails = |case: &(i64, Vec<u8>)| case.0 >= 4 && !case.1.is_empty();
        let (minimal, _) = crate::strategy::minimize(&strat, (91, vec![1, 9, 3]), fails);
        assert!((4..8).contains(&minimal.0), "{minimal:?}");
        assert_eq!(minimal.1.len(), 1, "{minimal:?}");
    }

    #[test]
    fn minimize_respects_filters_and_size_floors() {
        // The filter keeps even values only; shrinking must never
        // propose an odd counterexample. The vec floor of 2 must hold.
        let strat = prop::collection::vec((0u32..100).prop_filter("even", |v| v % 2 == 0), 2..10);
        let fails = |v: &Vec<u32>| v.iter().sum::<u32>() >= 10;
        let (minimal, _) = crate::strategy::minimize(&strat, vec![88, 66, 44, 22], fails);
        assert!(minimal.len() >= 2);
        assert!(minimal.iter().all(|v| v % 2 == 0), "{minimal:?}");
        assert!(minimal.iter().sum::<u32>() >= 10, "{minimal:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(
            v in prop::collection::vec(0i64..100, 0..10),
            flag in prop::bool::ANY,
            opt in prop::option::of(1u8..5),
            choice in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
            // `flag` itself just needs to have been generated; either value
            // is valid.
            let _: bool = flag;
            if let Some(x) = opt {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!(choice == 2 || choice == 4 || choice == 8);
        }
    }
}
