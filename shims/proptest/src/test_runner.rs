//! Test-runner plumbing: configuration and the deterministic RNG handed
//! to strategies.

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic xoshiro256** RNG. Seeded from the test's file and name so
/// every run of a given test explores the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for one property test, seeded from its location and name.
    pub fn for_test(file: &str, test_name: &str) -> Self {
        // FNV-1a over the identifying strings.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain([0u8]).chain(test_name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_name_sensitive() {
        let mut a = TestRng::for_test("f.rs", "t1");
        let mut b = TestRng::for_test("f.rs", "t1");
        let mut c = TestRng::for_test("f.rs", "t2");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
