//! `Option` strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Some` with high probability (3 in 4), `None` otherwise — close to
/// proptest's default weighting.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
        if rng.below(4) == 0 {
            Some(None)
        } else {
            Some(Some(self.inner.generate(rng)?))
        }
    }
}
