//! Offline subset of `parking_lot`: `RwLock` and `Mutex` with the
//! no-poisoning API, layered over `std::sync`. A poisoned std lock only
//! arises after a panic in a critical section, which is already a test
//! failure here, so unwrapping matches parking_lot semantics closely
//! enough for this workspace.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::RwLock`: like `std::sync::RwLock` but `read`/`write`
/// never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// `parking_lot::Mutex`: `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
