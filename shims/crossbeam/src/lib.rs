//! Offline subset of `crossbeam`: `thread::scope` with the crossbeam
//! calling convention (spawn closures receive the scope), implemented on
//! `std::thread::scope`.

pub mod thread {
    /// Scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. As in crossbeam, the closure
        /// receives the scope so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            inner.spawn(move || f(&Scope(inner)))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. std's scope propagates child panics by resuming them on
    /// the owning thread, so the crossbeam-style `Result` here is always
    /// `Ok` — callers' `.expect(...)` is then a no-op, which matches
    /// crossbeam's behavior of only erring on unjoinable panics.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share_stack_data() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
