//! Offline subset of the `rand` crate API.
//!
//! The container has no crates.io access, so the workspace vendors the
//! small slice of `rand` the GALO reproduction uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng`] with `seed_from_u64`,
//! [`rngs::StdRng`] (a deterministic xoshiro256** core), and
//! [`seq::SliceRandom`] with `choose`/`shuffle`. Every generator is fully
//! deterministic from its seed, which the reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number trait: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its full output domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their whole domain (`rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans this workspace
                // draws (all far below 2^64).
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Seedable generators (`rand::SeedableRng`), restricted to `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Statistical quality is ample for test workloads and the
    /// stream is stable across platforms and releases.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice sampling helpers (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_cover_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..20).collect();
        assert!(v.choose(&mut rng).is_some());
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
