//! Offline subset of the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple measurement loop: a warm-up pass, then `sample_size` timed
//! samples whose median/mean/min are printed per benchmark. No plots, no
//! statistics beyond that; numbers are comparable within a run, which is
//! all the workspace's before/after comparisons need.
//!
//! Two environment variables drive CI:
//!
//! * `GALO_BENCH_QUICK=1` — quick mode: every benchmark takes at most
//!   [`QUICK_SAMPLE_SIZE`] samples regardless of configured sample sizes,
//!   so a full bench binary finishes in seconds instead of minutes.
//! * `GALO_BENCH_JSON=<path>` — on harness drop, write every collected
//!   result as a JSON array (`name`/`median_ns`/`mean_ns`/`min_ns`/
//!   `p50_ns`/`p99_ns`/`samples` per entry), the artifact CI uploads to
//!   track the perf trajectory across PRs. Percentiles use the
//!   nearest-rank method over the sorted samples, so `p50` equals the
//!   reported median and `p99` is the tail the serving bench's latency
//!   targets are written against (with few samples — quick mode — it
//!   degrades to the max, which is the conservative direction).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Sample cap applied when `GALO_BENCH_QUICK` is set.
pub const QUICK_SAMPLE_SIZE: usize = 2;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// One finished benchmark, as recorded for the JSON results file.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    median_ns: u128,
    mean_ns: u128,
    min_ns: u128,
    p50_ns: u128,
    p99_ns: u128,
    samples: usize,
}

/// Nearest-rank percentile over sorted samples: the smallest sample
/// such that at least `pct` percent of samples are ≤ it.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Minimal JSON string escaping for benchmark names.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write the results file atomically: full contents to a sibling temp
/// file, then rename over `path`. CI uploads whatever file exists at
/// `GALO_BENCH_JSON` — a direct `fs::write` interrupted mid-way (or a
/// partial run's artifact) would be uploaded as if it were valid, so the
/// final path only ever holds a complete document.
fn write_json(path: &std::path::Path, results: &[BenchRecord]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"samples\":{}}}{sep}\n",
            json_escape(&r.name),
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.p50_ns,
            r.p99_ns,
            r.samples
        ));
    }
    out.push_str("]\n");
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    /// `GALO_BENCH_QUICK`: cap every benchmark at [`QUICK_SAMPLE_SIZE`]
    /// samples, overriding configured sample sizes (CI's fast lane).
    quick: bool,
    /// `GALO_BENCH_JSON`: where to write collected results on drop.
    json_path: Option<std::path::PathBuf>,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            quick: env_flag("GALO_BENCH_QUICK"),
            json_path: std::env::var_os("GALO_BENCH_JSON").map(Into::into),
            results: Vec::new(),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Some(path) = &self.json_path else { return };
        // A panicking bench unwinds through this drop with a partial (or
        // empty) result set. Publishing that would hand CI a truncated
        // artifact that uploads as if the run succeeded — leave whatever
        // artifact a previous good run produced untouched instead.
        if std::thread::panicking() {
            eprintln!(
                "bench panicked; not writing partial results to {}",
                path.display()
            );
            return;
        }
        if let Err(e) = write_json(path, &self.results) {
            eprintln!("failed to write bench results to {}: {e}", path.display());
        } else {
            println!(
                "wrote {} bench result(s) to {}",
                self.results.len(),
                path.display()
            );
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// The sample count actually used: quick mode caps every request.
    fn effective_sample_size(&self, requested: usize) -> usize {
        if self.quick {
            requested.min(QUICK_SAMPLE_SIZE)
        } else {
            requested
        }
    }

    /// Report one finished benchmark: print the human-readable line and
    /// retain the record for the JSON results file.
    fn record(&mut self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        println!(
            "{name:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  p50 {p50:>12.3?}  p99 {p99:>12.3?}  ({} samples{})",
            sorted.len(),
            if self.quick { ", quick" } else { "" },
        );
        self.results.push(BenchRecord {
            name: name.to_string(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            p50_ns: p50.as_nanos(),
            p99_ns: p99.as_nanos(),
            samples: sorted.len(),
        });
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let sample_size = self.effective_sample_size(self.sample_size);
        f(&mut Bencher {
            samples: &mut samples,
            sample_size,
        });
        self.record(name, &samples);
        self
    }

    /// Record a plain scalar measurement (a count, a ratio scaled to an
    /// integer, a byte size) alongside the timing results, so benches
    /// can export quality metrics — admission rejects, false-positive
    /// counts, catalog bytes — into the same JSON artifact CI uploads.
    /// The value lands in every `*_ns` field of one single-sample
    /// record; interpret it by name, not unit.
    pub fn metric(&mut self, name: &str, value: u128) -> &mut Self {
        println!("{name:<48} value {value}");
        self.results.push(BenchRecord {
            name: name.to_string(),
            median_ns: value,
            mean_ns: value,
            min_ns: value,
            p50_ns: value,
            p99_ns: value,
            samples: 1,
        });
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks. A `sample_size` override is
/// scoped to the group, as in real criterion.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run_one<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let sample_size = self.criterion.effective_sample_size(self.sample_size);
        f(&mut Bencher {
            samples: &mut samples,
            sample_size,
        });
        self.criterion
            .record(&format!("{}/{}", self.name, id), &samples);
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run_one(id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run_one(id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!`: both the struct form (`name = ...; config = ...;
/// targets = ...`) and the positional form (`group_name, target, ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// `criterion_main!`: emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.quick = false; // immune to the ambient environment
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // One warm-up plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        c.quick = false;
        let mut group = c.benchmark_group("g");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &21u64, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        assert_eq!(seen, 21);
    }

    #[test]
    fn metrics_land_in_the_json_artifact() {
        let dir = std::env::temp_dir().join(format!(
            "galo-criterion-metric-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_metric.json");
        {
            let mut c = Criterion::default().sample_size(2);
            c.quick = false;
            c.json_path = Some(path.clone());
            c.metric("admission/false_admissions", 42);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"name\":\"admission/false_admissions\""),
            "{text}"
        );
        assert!(text.contains("\"median_ns\":42"), "{text}");
        assert!(text.contains("\"samples\":1"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::from_parameter("8tables").to_string(),
            "8tables"
        );
        assert_eq!(BenchmarkId::new("scan", 4).to_string(), "scan/4");
    }

    #[test]
    fn quick_mode_caps_every_sample_size() {
        let mut c = Criterion::default().sample_size(50);
        c.quick = true;
        let mut calls = 0u32;
        c.bench_function("capped", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // One warm-up plus QUICK_SAMPLE_SIZE samples, not 50.
        assert_eq!(calls, 1 + QUICK_SAMPLE_SIZE as u32);
        // Group-level overrides are capped too.
        let mut group_calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(40).bench_function("capped", |b| {
            b.iter(|| {
                group_calls += 1;
            })
        });
        group.finish();
        assert_eq!(group_calls, 1 + QUICK_SAMPLE_SIZE as u32);
    }

    #[test]
    fn json_results_file_is_written_on_drop() {
        let dir = std::env::temp_dir().join(format!(
            "galo-criterion-json-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        {
            let mut c = Criterion::default().sample_size(2);
            c.quick = false;
            c.json_path = Some(path.clone());
            c.bench_function("alpha \"quoted\"", |b| b.iter(|| 1 + 1));
            let mut group = c.benchmark_group("grp");
            group.bench_function("beta", |b| b.iter(|| 2 + 2));
            group.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        assert!(text.contains("\"name\":\"alpha \\\"quoted\\\"\""), "{text}");
        assert!(text.contains("\"name\":\"grp/beta\""), "{text}");
        assert!(text.contains("\"median_ns\":"), "{text}");
        assert!(text.contains("\"p50_ns\":"), "{text}");
        assert!(text.contains("\"p99_ns\":"), "{text}");
        assert_eq!(text.matches("\"samples\":2").count(), 2, "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_bench_leaves_no_partial_artifact() {
        let dir = std::env::temp_dir().join(format!(
            "galo-criterion-panic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_panic.json");
        // A previous good run's artifact must survive the panic untouched.
        std::fs::write(&path, "[]\n").unwrap();
        let path2 = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut c = Criterion::default().sample_size(2);
            c.quick = false;
            c.json_path = Some(path2);
            c.bench_function("ok-before-panic", |b| b.iter(|| 1 + 1));
            panic!("bench blew up");
            // `c` drops here while unwinding.
        });
        assert!(result.is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "[]\n");
        // No stray temp file either.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_write_is_atomic_rename_with_no_temp_left_behind() {
        let dir = std::env::temp_dir().join(format!(
            "galo-criterion-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_atomic.json");
        // Stale artifact from an earlier run gets replaced wholesale.
        std::fs::write(&path, "stale garbage").unwrap();
        {
            let mut c = Criterion::default().sample_size(2);
            c.quick = false;
            c.json_path = Some(path.clone());
            c.metric("policy/p99_ns", 7);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"), "{text}");
        assert!(text.contains("\"name\":\"policy/p99_ns\""), "{text}");
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "only the final artifact: {entries:?}");
        // Writing into a missing directory fails cleanly (no temp litter
        // anywhere we could check, but the error must surface).
        let gone = dir.join("no-such-subdir").join("BENCH_x.json");
        assert!(write_json(&gone, &[]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nearest_rank_percentiles() {
        let ms = |n: u64| Duration::from_millis(n);
        // 1..=100 ms: p50 is the 50th sample, p99 the 99th.
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        // Few samples (quick mode): p99 degrades to the max.
        let tiny = vec![ms(1), ms(2)];
        assert_eq!(percentile(&tiny, 50.0), ms(1));
        assert_eq!(percentile(&tiny, 99.0), ms(2));
        let one = vec![ms(7)];
        assert_eq!(percentile(&one, 50.0), ms(7));
        assert_eq!(percentile(&one, 99.0), ms(7));
    }

    #[test]
    fn env_flag_semantics() {
        // Parsing rules, not ambient env: set/unset is racy across
        // threads, so exercise the values through a scoped helper.
        assert!(!env_flag("GALO_BENCH_QUICK_SURELY_UNSET_VAR"));
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
