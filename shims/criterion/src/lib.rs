//! Offline subset of the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple measurement loop: a warm-up pass, then `sample_size` timed
//! samples whose median/mean/min are printed per benchmark. No plots, no
//! statistics beyond that; numbers are comparable within a run, which is
//! all the workspace's before/after comparisons need.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measure `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<48} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
        sorted.len()
    );
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        });
        report(name, &samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks. A `sample_size` override is
/// scoped to the group, as in real criterion.
pub struct BenchmarkGroup<'a> {
    /// Held to keep the group borrow-exclusive like real criterion's.
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        });
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id), &samples);
        self
    }

    pub fn finish(self) {}
}

/// `criterion_group!`: both the struct form (`name = ...; config = ...;
/// targets = ...`) and the positional form (`group_name, target, ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// `criterion_main!`: emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // One warm-up plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &21u64, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        assert_eq!(seen, 21);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::from_parameter("8tables").to_string(),
            "8tables"
        );
        assert_eq!(BenchmarkId::new("scan", 4).to_string(), "scan/4");
    }
}
