//! Workspace facade: re-exports every GALO crate under one name so the
//! integration tests, examples and downstream users can depend on a
//! single package.
//!
//! The interesting entry points live in [`core`] ([`core::Galo`]) and
//! [`workloads`] (the TPC-DS-like and client workload generators); see
//! the repository README for a tour.

pub use galo_bench as bench;
pub use galo_catalog as catalog;
pub use galo_core as core;
pub use galo_executor as executor;
pub use galo_optimizer as optimizer;
pub use galo_qgm as qgm;
pub use galo_rdf as rdf;
pub use galo_sql as sql;
pub use galo_workloads as workloads;
