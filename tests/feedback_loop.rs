//! The runtime-feedback loop end to end (ROADMAP item 1): actuals
//! recorded after execution widen per-template sketches (near-miss
//! widening), concentration narrows them (decayed widen factors), and
//! every effective refinement moves the mutation epoch so the serving
//! tier drops exactly the outcomes it would otherwise serve stale.
//!
//! The load-bearing property is **monotone safety**: refinement never
//! rejects a previously matched plan. A matched segment's values fold
//! into the exact observation core unconditionally, and narrowing only
//! decays the multiplicative widen factor (never below 1), so the
//! envelope always contains every recorded true match — pinned here by
//! a proptest over random interleavings of widening, narrowing and
//! out-of-band noise.

use std::collections::BTreeSet;

use galo_catalog::{
    col, ColumnId, ColumnStats, ColumnType, Database, DatabaseBuilder, Index, IndexId,
    SystemConfig, Table, Value,
};
use galo_core::{
    abstract_plan, learn_workload, match_plan, segment_pop_checks, vocab, AdmissionQuery,
    FeedbackOptions, KbBuilder, KnowledgeBase, LearningConfig, MatchConfig, MatchConfigError,
    PopCheck, PopObservation, ServingTier, Template, TemplateRefinement,
};
use galo_executor::compute_actuals;
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, segment_signature, GuidelineDoc, Qgm};
use galo_rdf::ScratchDir;
use galo_sql::parse;
use galo_workloads::Workload;
use proptest::prelude::*;

/// The planted-flooding workload of the learning tests: queries whose
/// plans a learned template matches, plus shape variety.
fn quirky_workload(name: &str) -> Workload {
    let mut b = DatabaseBuilder::new(name, SystemConfig::default_1gb());
    let mut fact = Table::new(
        "FACT",
        vec![
            col("F_ADDR", ColumnType::Integer),
            col("F_PAYLOAD", ColumnType::Varchar(180)),
        ],
    );
    fact.add_index(Index {
        name: "F_ADDR_IX".into(),
        column: ColumnId(0),
        unique: false,
        cluster_ratio: 0.93,
    });
    let f = b.add_table(
        fact,
        1_441_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(500_000, 0.0, 1e6, 90),
        ],
    );
    let addr = b.add_table(
        Table::new(
            "ADDR",
            vec![
                col("A_SK", ColumnType::Integer),
                col("A_STATE", ColumnType::Varchar(4)),
            ],
        ),
        50_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(50, 0.0, 1e6, 2).with_frequent(vec![
                (Value::Str("CA".into()), 9_000),
                (Value::Str("TX".into()), 6_000),
                (Value::Str("VT".into()), 200),
            ]),
        ],
    );
    *b.belief_mut().column_mut(addr, ColumnId(1)) = ColumnStats::uniform(5_000, 0.0, 1e6, 2);
    b.plant_stale_cluster_ratio(f, IndexId(0), 0.03);
    let db = b.build();
    let pool = [
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'TX'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'CA'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'VT' AND f_addr = 9",
        "SELECT a_state FROM addr, fact WHERE a_sk = f_addr AND f_addr = 3",
        "SELECT f_payload FROM fact WHERE f_addr = 12",
    ];
    let queries = pool
        .iter()
        .enumerate()
        .map(|(i, sql)| parse(&db, &format!("q{i}"), sql).unwrap())
        .collect();
    Workload {
        name: name.into(),
        db,
        queries,
    }
}

fn fast_learning() -> LearningConfig {
    LearningConfig {
        random_plans: 12,
        seed: 0x6A10,
        ..LearningConfig::default()
    }
}

/// One join plan plus a template abstracted from it, with every
/// cardinality pinned to its exact plan value (widen 1, point ranges) so
/// margin-1 admission is sharp: the plan's own checks admit, anything
/// displaced does not.
fn plan_and_template(db_name: &str) -> (Workload, Qgm, Template) {
    let w = quirky_workload(db_name);
    let plan = Optimizer::new(&w.db).optimize(&w.queries[0]).unwrap();
    let g = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).unwrap()]);
    let template = abstract_plan(&w.db, &plan, plan.root(), &g, format!("{db_name}_tpl"));
    (w, plan, template)
}

/// The rewrite keys a report matched: `(template IRI, segment root)`.
fn rewrite_keys(report: &galo_core::MatchReport) -> BTreeSet<(String, u32)> {
    report
        .rewrites
        .iter()
        .map(|r| (r.template_iri.clone(), r.segment_op_id))
        .collect()
}

/// Displace every check's estimated cardinality by `factor`.
fn displaced(checks: &[PopCheck], factor: f64) -> Vec<PopCheck> {
    checks
        .iter()
        .map(|c| PopCheck {
            est_card: c.est_card * factor,
            ..*c
        })
        .collect()
}

/// Per-check observations for one template, every cardinality at `band`.
fn observations(checks: &[PopCheck], band: f64) -> Vec<PopObservation> {
    checks
        .iter()
        .map(|c| PopObservation {
            pop_type: c.pop_type.to_string(),
            cards: vec![(c.est_card, band)],
            scan: c.scan,
            scan_band: band,
        })
        .collect()
}

// ----------------------------------------------------------- refinement --

/// Near-miss widening: a value rejected at margin 1 but within the
/// widened band folds in and is admitted at margin 1 afterwards; a value
/// far outside the band is dropped and stays rejected. Every effective
/// refinement advances the epoch and the refinement counter; a no-op
/// batch advances neither.
#[test]
fn band_gated_refinement_widens_near_misses_only() {
    let (w, plan, template) = plan_and_template("fb_refine");
    let kb = KnowledgeBase::new();
    kb.insert(&template);
    let iri = vocab::template_iri(&template.id).str_value().to_string();
    let sig = segment_signature(&plan, plan.root()).hash;
    let checks = segment_pop_checks(&w.db, &plan, plan.root());

    let admits = |cs: &[PopCheck]| {
        kb.candidate_templates_admitting(sig, &AdmissionQuery::exact(cs, 1.0))
            .contains(&iri)
    };
    assert!(admits(&checks), "the template admits its own plan");
    assert!(
        checks.iter().any(|c| c.est_card > 0.0),
        "displacement needs a nonzero cardinality to move"
    );
    let near = displaced(&checks, 3.0);
    let far = displaced(&checks, 1000.0);
    assert!(!admits(&near), "3x-displaced is rejected at margin 1");
    assert!(!admits(&far));

    // Refine with the near values at band 4: in band, folds, widens.
    let e0 = kb.epoch();
    let outcome = kb.refine_template_stats(
        &iri,
        &TemplateRefinement {
            observations: observations(&near, 4.0),
            narrows: vec![],
        },
    );
    assert!(outcome.changed);
    assert!(outcome.values_folded > 0);
    assert!(kb.epoch() > e0, "effective refinement must move the epoch");
    assert_eq!(kb.refinements_applied(), 1);
    assert!(admits(&near), "folded values admit at margin 1");
    assert!(admits(&checks), "the original values still admit");
    assert!(!admits(&far), "far values were never folded");

    // The far values are out of band everywhere: every fold drops, the
    // batch is a no-op, and the epoch must NOT move. Cards only — an
    // unchanged scan trio would fold (it is trivially in band) and make
    // the batch effective.
    let far_cards: Vec<PopObservation> = far
        .iter()
        .filter(|c| c.est_card > 0.0)
        .map(|c| PopObservation {
            pop_type: c.pop_type.to_string(),
            cards: vec![(c.est_card, 4.0)],
            scan: None,
            scan_band: 4.0,
        })
        .collect();
    assert!(!far_cards.is_empty());
    let e1 = kb.epoch();
    let noop = kb.refine_template_stats(
        &iri,
        &TemplateRefinement {
            observations: far_cards,
            narrows: vec![],
        },
    );
    assert!(!noop.changed);
    assert_eq!(noop.values_folded, 0);
    assert!(noop.values_dropped > 0);
    assert_eq!(kb.epoch(), e1, "a dropped batch invalidates nothing");
    assert_eq!(kb.refinements_applied(), 1);
    assert!(!admits(&far));

    // An unknown template is a clean no-op too.
    let ghost = kb.refine_template_stats(
        "http://galo/kb/template/ghost",
        &TemplateRefinement {
            observations: observations(&near, 4.0),
            narrows: vec![],
        },
    );
    assert!(!ghost.changed);
    assert_eq!(kb.epoch(), e1);
}

/// Refined sketches are durable: they survive `export` → `import` into a
/// fresh knowledge base AND a sharded-durable close/reopen through the
/// same [`KbBuilder`] path that created the store.
#[test]
fn refined_sketches_survive_export_import_and_sharded_reopen() {
    let (w, plan, template) = plan_and_template("fb_durable");
    let dir = ScratchDir::new("feedback-durable");
    let iri = vocab::template_iri(&template.id).str_value().to_string();
    let sig = segment_signature(&plan, plan.root()).hash;
    let checks = segment_pop_checks(&w.db, &plan, plan.root());
    let near = displaced(&checks, 3.0);
    let admits = |kb: &KnowledgeBase, cs: &[PopCheck]| {
        kb.candidate_templates_admitting(sig, &AdmissionQuery::exact(cs, 1.0))
            .contains(&iri)
    };

    let image = {
        let kb = KbBuilder::new()
            .durable_dir(dir.path())
            .shards(2)
            .build_kb()
            .unwrap();
        kb.insert(&template);
        assert!(!admits(&kb, &near));
        let outcome = kb.refine_template_stats(
            &iri,
            &TemplateRefinement {
                observations: observations(&near, 4.0),
                narrows: vec![],
            },
        );
        assert!(outcome.changed);
        assert!(admits(&kb, &near));
        kb.export()
    };

    // Sharded-durable reopen: the refined envelope came back from the
    // per-shard WAL/snapshots and the rebuilt signature index.
    let reopened = KbBuilder::new()
        .durable_dir(dir.path())
        .shards(2)
        .build_kb()
        .unwrap();
    assert_eq!(reopened.template_count(), 1);
    assert!(
        admits(&reopened, &near),
        "refinement must survive the reopen"
    );
    assert!(admits(&reopened, &checks));

    // Export/import: the refined sketch rode the image into a fresh KB.
    let fresh = KnowledgeBase::new();
    fresh.import(&image).unwrap();
    assert!(
        admits(&fresh, &near),
        "refinement must survive export/import"
    );
}

// ---------------------------------------------------------- serving tier --

/// The full loop through the serving tier: serve, execute, record
/// actuals, fold a batch — the refinement bumps the epoch, cached
/// outcomes drop (zero stale hits), the re-served reports equal fresh
/// matches against the refined knowledge base, and no previously
/// matched plan is lost.
#[test]
fn serving_tier_feedback_invalidates_without_losing_matches() {
    let w = quirky_workload("fb_serving");
    let kb = KbBuilder::new()
        .feedback(FeedbackOptions {
            batch_size: 4,
            ..FeedbackOptions::default()
        })
        .build_kb()
        .unwrap();
    learn_workload(&w, &kb, &fast_learning());
    let cfg = MatchConfig::builder()
        .range_margin(1.0)
        .near_miss_factor(4.0)
        .build()
        .unwrap();
    let optimizer = Optimizer::new(&w.db);
    let plans: Vec<Qgm> = w
        .queries
        .iter()
        .map(|q| optimizer.optimize(q).unwrap())
        .collect();
    let tier = ServingTier::new(&w.db, &kb, cfg.clone());

    // Serve everything cold, "execute" each plan, record its actuals.
    let mut pre_keys: Vec<BTreeSet<(String, u32)>> = Vec::new();
    let mut matched_any = false;
    for plan in &plans {
        let outcome = tier.serve(plan);
        matched_any |= !outcome.report.rewrites.is_empty();
        pre_keys.push(rewrite_keys(&outcome.report));
        let actuals = compute_actuals(&w.db, plan);
        tier.record_feedback(plan, &outcome.report, &actuals);
    }
    assert!(matched_any, "the learned template must match something");
    assert!(kb.feedback().pending() > 0, "observations were buffered");

    // Recording alone must not invalidate: the warm serve still hits.
    let warm = tier.serve(&plans[0]);
    assert!(warm.report.cache_hit, "recording is off the serve path");

    // Fold the batch. At least the matched template is refined (its
    // estimate values fold into the sketch), so the epoch moves.
    let e1 = kb.epoch();
    let applied = tier
        .maybe_apply_feedback()
        .expect("a full batch is pending");
    assert!(applied.templates_refined > 0);
    assert!(applied.values_folded > 0);
    assert!(kb.epoch() > e1, "refinement must advance the epoch");
    assert_eq!(kb.feedback().pending(), 0, "the buffers drained");
    assert!(
        tier.maybe_apply_feedback().is_none(),
        "nothing left to fold"
    );

    // Zero stale hits: every cached outcome from before the refinement
    // is dropped, and the re-served report equals a fresh match against
    // the refined knowledge base — never the pre-refinement cache entry.
    let stale_before = tier.cache().counters().stale_drops;
    let mut reserved = BTreeSet::new();
    for (i, plan) in plans.iter().enumerate() {
        let fresh = match_plan(&w.db, &kb, plan, &cfg);
        let outcome = tier.serve(plan);
        if reserved.insert(outcome.fingerprint) {
            // Plans can legitimately share a fingerprint (identical
            // shape and estimates); only the first serve of each entry
            // must observe the stale drop.
            assert!(
                !outcome.report.cache_hit,
                "plan {i}: pre-refinement outcome must not be served"
            );
        }
        assert_eq!(
            rewrite_keys(&outcome.report),
            rewrite_keys(&fresh),
            "plan {i}: served report equals the fresh oracle"
        );
        assert_eq!(
            outcome.report.refinements_applied,
            kb.refinements_applied(),
            "plan {i}: the report carries the refinement generation"
        );
        // Never-lose: everything matched before feedback still matches.
        assert!(
            rewrite_keys(&outcome.report).is_superset(&pre_keys[i]),
            "plan {i}: refinement lost a previously matched rewrite"
        );
    }
    assert!(
        tier.cache().counters().stale_drops > stale_before,
        "the refinement evicted cached outcomes"
    );
    // And the tier re-caches against the new epoch.
    assert!(tier.serve(&plans[0]).report.cache_hit);
}

// ------------------------------------------------------------ config API --

/// The validated [`MatchConfig`] builder names the offending field.
#[test]
fn match_config_builder_validates_every_field() {
    let cfg = MatchConfig::builder()
        .join_threshold(3)
        .range_margin(2.0)
        .sketch_trim(0.05)
        .near_miss_factor(4.0)
        .dataset("tpcds")
        .build()
        .unwrap();
    assert_eq!(cfg.join_threshold, 3);
    assert_eq!(cfg.range_margin, 2.0);
    assert_eq!(cfg.sketch_trim, 0.05);
    assert_eq!(cfg.near_miss_factor, 4.0);
    assert_eq!(cfg.dataset.as_deref(), Some("tpcds"));

    assert_eq!(
        MatchConfig::builder()
            .join_threshold(0)
            .build()
            .unwrap_err(),
        MatchConfigError::JoinThreshold(0)
    );
    assert_eq!(
        MatchConfig::builder()
            .range_margin(0.5)
            .build()
            .unwrap_err(),
        MatchConfigError::RangeMargin(0.5)
    );
    assert_eq!(
        MatchConfig::builder().sketch_trim(1.0).build().unwrap_err(),
        MatchConfigError::SketchTrim(1.0)
    );
    assert!(matches!(
        MatchConfig::builder().near_miss_factor(f64::NAN).build(),
        Err(MatchConfigError::NearMissFactor(v)) if v.is_nan()
    ));
    assert!(MatchConfig::builder()
        .dataset("w")
        .any_dataset()
        .build()
        .unwrap()
        .dataset
        .is_none());
}

// -------------------------------------------------------------- proptest --

/// One random refinement event against the template.
#[derive(Debug, Clone)]
enum Event {
    /// Displace the checks by `factor`, fold at `band`.
    Observe { factor: f64, band: f64 },
    /// Displace mildly; if admitted at margin 1, record as a true match
    /// (band ∞ — what `record_feedback` does for matched segments).
    Matched { factor: f64 },
    /// Narrow every operator type at `decay`.
    Narrow { decay: f64 },
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0.05f64..20.0, 1.0f64..8.0).prop_map(|(factor, band)| Event::Observe { factor, band }),
        (0.25f64..4.0).prop_map(|factor| Event::Matched { factor }),
        (0.0f64..1.0).prop_map(|decay| Event::Narrow { decay }),
    ]
}

/// Fixture shared by every proptest case: rebuilding the database and
/// plan per case would swamp the property itself.
fn monotone_fixture() -> &'static (Database, Qgm, Template, Vec<PopCheck>, u64) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(Database, Qgm, Template, Vec<PopCheck>, u64)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (w, plan, mut template) = plan_and_template("fb_monotone");
        // A widened starting envelope, so narrowing has room to bite.
        for pop in &mut template.pops {
            pop.cardinality.set_widen(4.0);
        }
        let checks = segment_pop_checks(&w.db, &plan, plan.root());
        let sig = segment_signature(&plan, plan.root()).hash;
        (w.db, plan, template, checks, sig)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monotone safety: under ANY interleaving of band-gated widening,
    /// decayed narrowing and out-of-band noise, every check set that was
    /// admitted at margin 1 *and recorded as a match* stays admitted at
    /// margin 1 forever.
    #[test]
    fn decayed_refinement_never_rejects_a_recorded_match(
        events in prop::collection::vec(event_strategy(), 1..24),
    ) {
        let (_db, _plan, template, checks, sig) = monotone_fixture();
        let sig = *sig;
        let kb = KnowledgeBase::new();
        kb.insert(template);
        let iri = vocab::template_iri(&template.id).str_value().to_string();
        let admits = |cs: &[PopCheck]| {
            kb.candidate_templates_admitting(sig, &AdmissionQuery::exact(cs, 1.0))
                .contains(&iri)
        };
        let narrows_all: Vec<String> = {
            let mut tys: Vec<String> =
                checks.iter().map(|c| c.pop_type.to_string()).collect();
            tys.sort();
            tys.dedup();
            tys
        };

        let mut recorded: Vec<Vec<PopCheck>> = vec![checks.clone()];
        kb.refine_template_stats(&iri, &TemplateRefinement {
            observations: observations(checks, f64::INFINITY),
            narrows: vec![],
        });
        for event in &events {
            match event {
                Event::Observe { factor, band } => {
                    let cs = displaced(checks, *factor);
                    kb.refine_template_stats(&iri, &TemplateRefinement {
                        observations: observations(&cs, *band),
                        narrows: vec![],
                    });
                }
                Event::Matched { factor } => {
                    let cs = displaced(checks, *factor);
                    if admits(&cs) {
                        kb.refine_template_stats(&iri, &TemplateRefinement {
                            observations: observations(&cs, f64::INFINITY),
                            narrows: vec![],
                        });
                        recorded.push(cs);
                    }
                }
                Event::Narrow { decay } => {
                    kb.refine_template_stats(&iri, &TemplateRefinement {
                        observations: vec![],
                        narrows: narrows_all.iter().map(|t| (t.clone(), *decay)).collect(),
                    });
                }
            }
            for (k, cs) in recorded.iter().enumerate() {
                prop_assert!(
                    admits(cs),
                    "recorded match {k} lost after {event:?} (of {} events)",
                    events.len(),
                );
            }
        }
    }
}
