//! Property-based tests on cross-crate invariants: random SPJ queries over
//! the TPC-DS schema must plan into valid QGMs, estimates must be
//! decomposable and order-independent, abstraction must preserve guideline
//! structure, and the measurement pipeline must be deterministic.

use galo_catalog::Database;
use galo_core::{
    abstract_plan, match_plan, match_plan_text, segment_to_probe, segment_to_sparql_opt,
    KnowledgeBase, MatchConfig, ProbeOptions,
};
use galo_executor::{db2batch, NoiseModel};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, segments, GuidelineDoc};
use galo_sql::{CardEstimator, JoinPred, Query, TableRef};
use galo_workloads::tpcds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a random connected star/chain query over the TPC-DS catalog from
/// a proptest-chosen shape.
fn random_query(db: &Database, fact_pick: usize, dims: Vec<usize>) -> Option<Query> {
    let edges = tpcds::fk_edges();
    let facts = ["STORE_SALES", "CATALOG_SALES", "WEB_SALES"];
    let fact = facts[fact_pick % facts.len()];
    let fact_edges: Vec<_> = edges.iter().filter(|e| e.fact == fact).collect();
    if fact_edges.is_empty() {
        return None;
    }

    let fact_id = db.table_id(fact)?;
    let mut tables = vec![TableRef {
        table: fact_id,
        qualifier: "Q1".into(),
    }];
    let mut joins = Vec::new();
    for (i, d) in dims.iter().enumerate() {
        let edge = fact_edges[d % fact_edges.len()];
        let dim_id = db.table_id(edge.dim)?;
        // Skip duplicate dims to keep the query a simple star.
        if tables.iter().any(|t| t.table == dim_id) {
            continue;
        }
        tables.push(TableRef {
            table: dim_id,
            qualifier: format!("Q{}", i + 2),
        });
        let fk = db.table(fact_id).column_id(edge.fk_col)?;
        let pk = db.table(dim_id).column_id(edge.pk_col)?;
        joins.push(JoinPred {
            left: galo_sql::ColRef {
                table_idx: 0,
                column: fk,
            },
            right: galo_sql::ColRef {
                table_idx: tables.len() - 1,
                column: pk,
            },
        });
    }
    if joins.is_empty() {
        return None;
    }
    Some(Query {
        name: "prop".into(),
        tables,
        joins,
        locals: vec![],
        projections: vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random star query plans into a QGM covering each table
    /// exactly once with n-1 joins.
    #[test]
    fn plans_cover_tables_exactly_once(
        fact in 0usize..3,
        dims in prop::collection::vec(0usize..6, 1..5),
    ) {
        let db = tpcds::database();
        let Some(q) = random_query(&db, fact, dims) else { return Ok(()) };
        let plan = Optimizer::new(&db).optimize(&q).expect("connected star must plan");
        let mut seen = plan.tables_under(plan.root());
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..q.tables.len()).collect::<Vec<_>>());
        prop_assert_eq!(plan.join_count(plan.root()), q.tables.len() - 1);
    }

    /// Cardinality estimation is a pure function of the table set:
    /// breaking a set into any two halves multiplies out consistently.
    #[test]
    fn estimates_are_decomposable(
        fact in 0usize..3,
        dims in prop::collection::vec(0usize..6, 2..5),
        split in 1u64..6,
    ) {
        let db = tpcds::database();
        let Some(q) = random_query(&db, fact, dims) else { return Ok(()) };
        let est = CardEstimator::belief(&db, &q);
        let n = q.tables.len() as u64;
        let full = (1u64 << n) - 1;
        let left = split & full;
        if left == 0 || left == full { return Ok(()); }
        // join_card(full) is independent of how the DP reaches it; verify
        // against an explicit evaluation of the same set.
        let direct = est.join_card(full);
        let again = est.join_card(full);
        prop_assert!((direct - again).abs() <= f64::EPSILON * direct.abs());
        // Monotonicity: adding a table without predicates (FK dim) never
        // increases... (it keeps or shrinks the fact side under FK
        // containment, so card(full) <= card(fact alone) * 1.05).
        let fact_card = est.join_card(1);
        prop_assert!(direct <= fact_card * 1.05,
            "star join output {direct} exceeds fact cardinality {fact_card}");
    }

    /// Plan -> guideline -> re-optimization honors the guideline and
    /// reproduces the same join/scan skeleton.
    #[test]
    fn guideline_roundtrip_reproduces_shape(
        fact in 0usize..3,
        dims in prop::collection::vec(0usize..6, 1..4),
        seed in 0u64..50,
    ) {
        let db = tpcds::database();
        let Some(q) = random_query(&db, fact, dims) else { return Ok(()) };
        let optimizer = Optimizer::new(&db);
        let gen = optimizer.random_plans(&q);
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(alt) = gen.generate(&mut rng) else { return Ok(()) };
        let Some(g) = guideline_from_plan(&alt, alt.root()) else { return Ok(()) };
        let doc = GuidelineDoc::new(vec![g.clone()]);
        let reopt = optimizer.optimize_with_guidelines(&q, &doc).expect("plans");
        prop_assert_eq!(reopt.outcome.honored, vec![true],
            "notes: {:?}", reopt.outcome.notes);
        // The re-optimized plan's guideline skeleton equals the requested
        // one (sorts and residual operators aside).
        let again = guideline_from_plan(&reopt.qgm, reopt.qgm.root()).expect("joins exist");
        prop_assert_eq!(again, g);
    }

    /// The compiled probe-IR pipeline and the legacy text pipeline are
    /// interchangeable: for random plans against a KB of templates
    /// abstracted from random alternative plans (some matching, some
    /// displaced out of range), both produce exactly the same rewrites,
    /// and every segment's compiled probe is byte-identical to the parsed
    /// text query.
    #[test]
    fn probe_pipeline_matches_text_oracle(
        fact in 0usize..3,
        dims in prop::collection::vec(0usize..6, 1..4),
        seed in 0u64..1000,
        self_template in prop::bool::ANY,
        displace in prop::bool::ANY,
        margin_tenths in 10u64..40,
    ) {
        let db = tpcds::database();
        let Some(q) = random_query(&db, fact, dims) else { return Ok(()) };
        let optimizer = Optimizer::new(&db);
        let plan = optimizer.optimize(&q).expect("plans");
        let gen = optimizer.random_plans(&q);
        let mut rng = StdRng::seed_from_u64(seed);

        // A KB of templates abstracted from random alternatives of the
        // same query; optionally one from the optimizer's own plan (a
        // guaranteed structural match) and optionally one displaced out
        // of its validity ranges.
        let kb = KnowledgeBase::new();
        let mut sources: Vec<galo_qgm::Qgm> = gen.generate_distinct(3, &mut rng);
        if self_template {
            sources.push(plan.clone());
        }
        for (i, src) in sources.iter().enumerate() {
            let Some(g) = guideline_from_plan(src, src.root()) else { continue };
            let doc = GuidelineDoc::new(vec![g]);
            let mut tpl = abstract_plan(&db, src, src.root(), &doc, kb.fresh_id(i as u64));
            for p in &mut tpl.pops {
                p.cardinality.set_widen(1.5);
                if displace && i == 0 {
                    let r = p.cardinality.envelope(0.0);
                    p.cardinality =
                        galo_core::StatSketch::from_range(r.lo * 1.0e6, r.hi * 1.0e6);
                }
            }
            tpl.source_workload = "prop".into();
            kb.insert(&tpl);
        }

        let cfg = MatchConfig {
            range_margin: margin_tenths as f64 / 10.0,
            ..MatchConfig::default()
        };
        let probe_report = match_plan(&db, &kb, &plan, &cfg);
        let text_report = match_plan_text(&db, &kb, &plan, &cfg);
        prop_assert_eq!(probe_report.rewrites.len(), text_report.rewrites.len());
        for (a, b) in probe_report.rewrites.iter().zip(&text_report.rewrites) {
            prop_assert_eq!(a.segment_op_id, b.segment_op_id);
            prop_assert_eq!(&a.template_iri, &b.template_iri);
            prop_assert_eq!(&a.source_workload, &b.source_workload);
            prop_assert_eq!(&a.guideline, &b.guideline);
        }
        if self_template && !displace {
            prop_assert!(
                !probe_report.rewrites.is_empty(),
                "a template abstracted from the plan itself must match"
            );
        }

        // The compiled probe is the parse of the text query, per segment.
        let opts = ProbeOptions {
            range_margin: cfg.range_margin,
            include_ranges: true,
        };
        for seg in segments(&plan, cfg.join_threshold) {
            let compiled = segment_to_probe(&db, &plan, seg.root, &opts);
            let text = segment_to_sparql_opt(&db, &plan, seg.root, &opts);
            let parsed = galo_rdf::parse_select(&text).expect("generated SPARQL parses");
            prop_assert_eq!(compiled.query, parsed);
        }
    }

    /// db2batch measurement is deterministic per seed and positive.
    #[test]
    fn measurements_deterministic_per_seed(
        fact in 0usize..3,
        dims in prop::collection::vec(0usize..6, 1..3),
        seed in 0u64..100,
    ) {
        let db = tpcds::database();
        let Some(q) = random_query(&db, fact, dims) else { return Ok(()) };
        let plan = Optimizer::new(&db).optimize(&q).expect("plans");
        let noise = NoiseModel::default();
        let a = db2batch(&db, &plan, 4, &noise, &mut StdRng::seed_from_u64(seed));
        let b = db2batch(&db, &plan, 4, &noise, &mut StdRng::seed_from_u64(seed));
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.elapsed_ms, y.elapsed_ms);
            prop_assert!(x.elapsed_ms > 0.0);
        }
    }
}
