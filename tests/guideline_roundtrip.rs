//! Guideline and knowledge-base round-trips: XML serialization, canonical
//! abstraction, RDF storage, SPARQL retrieval — the full representation
//! chain the matching engine depends on.

use galo_core::{abstract_plan, match_plan, KnowledgeBase, MatchConfig};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, GuidelineDoc, GuidelineNode};
use galo_sql::CmpOp;
use galo_workloads::{tpcds, QueryBuilder};
use proptest::prelude::*;

/// Strategy for random guideline trees over qualifiers Q1..Q6.
fn guideline_tree() -> impl Strategy<Value = GuidelineNode> {
    let leaf = (1u8..7, prop::bool::ANY, prop::option::of("[A-Z]{2,8}")).prop_map(|(q, tb, ix)| {
        let tabid = format!("Q{q}");
        if tb {
            GuidelineNode::TbScan { tabid }
        } else {
            GuidelineNode::IxScan { tabid, index: ix }
        }
    });
    leaf.prop_recursive(3, 16, 2, |inner| {
        (0u8..3, inner.clone(), inner).prop_map(|(kind, o, i)| match kind {
            0 => GuidelineNode::HsJoin(Box::new(o), Box::new(i)),
            1 => GuidelineNode::MsJoin(Box::new(o), Box::new(i)),
            _ => GuidelineNode::NlJoin(Box::new(o), Box::new(i)),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any guideline tree survives the XML round-trip byte-identically.
    #[test]
    fn xml_roundtrip_is_lossless(tree in guideline_tree()) {
        let doc = GuidelineDoc::new(vec![tree]);
        let parsed = GuidelineDoc::parse_xml(&doc.to_xml()).expect("own XML parses");
        prop_assert_eq!(parsed, doc);
    }

    /// TABID rewriting is structure-preserving and composable.
    #[test]
    fn map_tabids_composes(tree in guideline_tree()) {
        let once = tree.map_tabids(&|t| format!("X{t}"));
        let twice = once.map_tabids(&|t| t.strip_prefix('X').unwrap_or(t).to_string());
        prop_assert_eq!(twice, tree.clone());
        prop_assert_eq!(once.join_count(), tree.join_count());
    }
}

/// The learned-template chain: abstract → insert → SPARQL-match →
/// translate back to query qualifiers, on a real optimizer plan.
#[test]
fn template_chain_matches_its_own_source_plan() {
    let db = tpcds::database();
    let mut qb = QueryBuilder::new(&db, "chain");
    let ca = qb.table("CUSTOMER_ADDRESS");
    let cs = qb.table("CATALOG_SALES");
    qb.join((ca, "CA_ADDRESS_SK"), (cs, "CS_ADDR_SK"))
        .cmp(ca, "CA_STATE", CmpOp::Eq, "TX")
        .select(cs, "CS_LIST_PRICE");
    let q = qb.build();

    let optimizer = Optimizer::new(&db);
    let plan = optimizer.optimize(&q).expect("plans");
    let fix = GuidelineDoc::new(vec![GuidelineNode::HsJoin(
        Box::new(GuidelineNode::TbScan { tabid: "Q2".into() }),
        Box::new(GuidelineNode::TbScan { tabid: "Q1".into() }),
    )]);

    let kb = KnowledgeBase::new();
    let mut tpl = abstract_plan(&db, &plan, plan.root(), &fix, kb.fresh_id(1));
    for p in &mut tpl.pops {
        p.cardinality.set_widen(2.0);
        if let Some(scan) = &mut p.scan {
            scan.row_size.set_widen(1.5);
            scan.fpages.set_widen(2.0);
            scan.base_cardinality.set_widen(2.0);
        }
    }
    tpl.improvement = 0.5;
    tpl.source_workload = "unit".into();
    kb.insert(&tpl);

    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert_eq!(report.rewrites.len(), 1, "template must match its source");
    let rewrite = &report.rewrites[0];
    assert_eq!(rewrite.source_workload, "unit");
    // Canonical labels translated back to this query's qualifiers, with
    // the swap preserved: the fix builds from Q2's side first.
    assert_eq!(rewrite.guideline.tabids(), vec!["Q2", "Q1"]);

    // And the re-optimization honors it.
    let doc = report.guideline_doc();
    let reopt = optimizer.optimize_with_guidelines(&q, &doc).expect("plans");
    assert_eq!(reopt.outcome.honored, vec![true]);
}

/// Ranges gate matching: the same template with displaced cardinality
/// bounds must not match.
#[test]
fn displaced_ranges_do_not_match() {
    let db = tpcds::database();
    let mut qb = QueryBuilder::new(&db, "chain2");
    let ca = qb.table("CUSTOMER_ADDRESS");
    let cs = qb.table("CATALOG_SALES");
    qb.join((ca, "CA_ADDRESS_SK"), (cs, "CS_ADDR_SK"))
        .cmp(ca, "CA_STATE", CmpOp::Eq, "TX")
        .select(cs, "CS_LIST_PRICE");
    let q = qb.build();
    let optimizer = Optimizer::new(&db);
    let plan = optimizer.optimize(&q).expect("plans");
    let fix = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).expect("joins")]);

    let kb = KnowledgeBase::new();
    let mut tpl = abstract_plan(&db, &plan, plan.root(), &fix, kb.fresh_id(9));
    for p in &mut tpl.pops {
        p.cardinality = galo_core::StatSketch::from_range(1.0e12, 2.0e12);
    }
    tpl.source_workload = "unit".into();
    kb.insert(&tpl);
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert!(report.rewrites.is_empty());
}
