//! The paper's problem-pattern case studies (Figures 1, 4, 7, 8), each
//! reproduced end-to-end: the optimizer falls into the planted trap, the
//! learning engine discovers a rewrite, and re-optimization recovers a
//! large runtime factor.

use galo_catalog::Value;
use galo_core::{Galo, LearningConfig};
use galo_executor::{compute_actuals, Simulator};
use galo_optimizer::Optimizer;
use galo_qgm::PopKind;
use galo_sql::CmpOp;
use galo_workloads::{client, tpcds, QueryBuilder, Workload};

fn cfg() -> LearningConfig {
    LearningConfig {
        threads: 2,
        // Enough draws to cover the ~24-shape plan space of a two-table
        // join; the winning rewrite must not hinge on sampling luck.
        random_plans: 24,
        ..LearningConfig::default()
    }
}

fn single(db: galo_catalog::Database, name: &str, q: galo_sql::Query) -> Workload {
    Workload {
        name: name.into(),
        db,
        queries: vec![q],
    }
}

/// Figure 4 family: flooding through catalog_sales' stale-clustered
/// address index.
#[test]
fn fig4_flooding_pattern_recovers() {
    let db = tpcds::database();
    let q = {
        let mut qb = QueryBuilder::new(&db, "fig4");
        let ca = qb.table("CUSTOMER_ADDRESS");
        let cs = qb.table("CATALOG_SALES");
        qb.join((ca, "CA_ADDRESS_SK"), (cs, "CS_ADDR_SK"))
            .cmp(ca, "CA_STATE", CmpOp::Eq, "TX")
            .select(cs, "CS_LIST_PRICE");
        qb.build()
    };
    let w = single(db, "tpcds", q);

    let galo = Galo::new();
    let report = galo.learn(&w, &cfg());
    assert!(report.templates_learned >= 1, "{report:?}");
    let outcome = galo.reoptimize(&w, 0).expect("plans");
    assert!(outcome.improved(), "flooding fix must apply");
    assert!(
        outcome.original_ms / outcome.final_ms > 3.0,
        "flooding recovery should be dramatic: {:.1} -> {:.1}",
        outcome.original_ms,
        outcome.final_ms
    );
}

/// Figure 8 family: date correlation — the optimizer picks a hash join
/// where a merge join with early termination wins.
#[test]
fn fig8_sorting_pattern_recovers() {
    let db = tpcds::database();
    let q = {
        let mut qb = QueryBuilder::new(&db, "fig8");
        let ss = qb.table("STORE_SALES");
        let dd = qb.table("DATE_DIM");
        qb.join((ss, "SS_SOLD_DATE_SK"), (dd, "D_DATE_SK"))
            .between(dd, "D_DATE", 0i64, 36_524i64)
            .select(ss, "SS_LIST_PRICE");
        qb.build()
    };
    let w = single(db, "tpcds", q);

    let galo = Galo::new();
    let report = galo.learn(&w, &cfg());
    assert!(report.templates_learned >= 1, "{report:?}");
    let outcome = galo.reoptimize(&w, 0).expect("plans");
    assert!(outcome.improved());
    // The estimated-vs-actual gap on the original join is what GALO keys
    // on: verify the actuals machinery sees it.
    let actuals = compute_actuals(&w.db, &outcome.original);
    let root_q_error = actuals.q_error(&outcome.original, outcome.original.root());
    assert!(root_q_error > 10.0, "q-error {root_q_error}");
}

/// Figure 7 family: the transfer-rate misconfiguration steers web_sales
/// access into an index fetch that a table scan beats badly.
#[test]
fn fig7_transfer_rate_pattern_recovers() {
    let db = tpcds::database();
    let q = {
        let mut qb = QueryBuilder::new(&db, "fig7");
        let ws = qb.table("WEB_SALES");
        let dd = qb.table("DATE_DIM");
        qb.join((ws, "WS_SOLD_DATE_SK"), (dd, "D_DATE_SK"))
            .select(ws, "WS_LIST_PRICE");
        qb.build()
    };
    let w = single(db, "tpcds", q);

    // The trap: the optimizer's plan fetches web_sales through its date
    // index.
    let optimizer = Optimizer::new(&w.db);
    let plan = optimizer.optimize(&w.queries[0]).expect("plans");
    let uses_ws_index_fetch = plan.pops().any(|(_, p)| {
        matches!(p.kind, PopKind::IxScan { table, fetch: true, .. }
            if w.queries[0].tables[table].qualifier == "Q1")
    });
    assert!(
        uses_ws_index_fetch,
        "trap plan: {}",
        plan.plan_fingerprint()
    );

    let galo = Galo::new();
    let report = galo.learn(&w, &cfg());
    assert!(report.templates_learned >= 1, "{report:?}");
    let outcome = galo.reoptimize(&w, 0).expect("plans");
    assert!(outcome.improved());
    assert!(
        outcome.original_ms / outcome.final_ms > 2.0,
        "{:.1} -> {:.1}",
        outcome.original_ms,
        outcome.final_ms
    );
}

/// Figure 1 family: the client hero join with stale status statistics —
/// the optimizer fetches 40% of a 300M-row table through an index.
#[test]
fn fig1_hero_join_pattern_recovers() {
    let db = client::database();
    // Verify the stats trap itself first.
    let entry = db.table_id("ENTRY_IDX").expect("table exists");
    let rows = db.truth.table(entry).row_count;
    let open_sel_truth = db
        .truth
        .column(entry, galo_catalog::ColumnId(2))
        .eq_selectivity(&Value::Str("OPEN".into()), rows);
    assert!(open_sel_truth > 0.3, "truth says OPEN is ~40%");

    let q = {
        let mut qb = QueryBuilder::new(&db, "fig1");
        let o = qb.table("OPEN_IN");
        let e = qb.table("ENTRY_IDX");
        qb.join((o, "O_OPEN_SK"), (e, "E_OPEN_SK"))
            .cmp(e, "E_STATUS", CmpOp::Eq, "OPEN")
            .select(o, "O_PAYLOAD");
        qb.build()
    };
    let w = single(db, "client", q);

    let galo = Galo::new();
    let report = galo.learn(&w, &cfg());
    assert!(report.templates_learned >= 1, "{report:?}");
    let outcome = galo.reoptimize(&w, 0).expect("plans");
    assert!(outcome.improved());
    assert!(
        outcome.original_ms / outcome.final_ms > 2.0,
        "hero join recovery: {:.1} -> {:.1}",
        outcome.original_ms,
        outcome.final_ms
    );

    // And the runtime of the fix should be stable under warm re-runs.
    let sim = Simulator::new(&w.db);
    let reopt = outcome.reoptimized.as_ref().expect("reoptimized");
    let r1 = sim.run(&reopt.qgm, true).elapsed_ms;
    let r2 = sim.run(&reopt.qgm, true).elapsed_ms;
    assert_eq!(r1, r2, "simulator is deterministic");
}
