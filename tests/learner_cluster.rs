//! The learner cluster end to end: N simulated machines mining disjoint
//! slices of a workload and publishing batched templates into one shared
//! knowledge base must be **equivalent** to the sequential learning
//! engine — same triples, same signature index, same datasets — for any
//! node count, any publish batch size, any backend, and any publish
//! interleaving. A concurrent matcher must observe monotonically growing
//! coverage while the cluster publishes, and a durable cluster KB must
//! survive checkpoint + reopen bit for bit. Per-workload named graphs are
//! first-class datasets: matching scoped to one dataset never returns
//! another workload's template.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use galo_catalog::{
    col, ColumnId, ColumnStats, ColumnType, DatabaseBuilder, Index, IndexId, SystemConfig, Table,
    Value,
};
use galo_core::{
    abstract_plan, learn_workload, learn_workload_cluster, match_plan, match_plan_text, vocab,
    ClusterConfig, KnowledgeBase, LearningConfig, MatchConfig,
};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, GuidelineDoc, Qgm};
use galo_rdf::ScratchDir;
use galo_sql::parse;
use galo_workloads::Workload;
use proptest::prelude::*;

/// A workload over the planted-flooding schema whose query set is drawn
/// from a pool — different subsets give mining spaces of different sizes
/// and shapes, which is what the differential property quantifies over.
fn quirky_workload(name: &str, picks: &[usize]) -> Workload {
    let mut b = DatabaseBuilder::new(name, SystemConfig::default_1gb());
    let mut fact = Table::new(
        "FACT",
        vec![
            col("F_ADDR", ColumnType::Integer),
            col("F_PAYLOAD", ColumnType::Varchar(180)),
        ],
    );
    fact.add_index(Index {
        name: "F_ADDR_IX".into(),
        column: ColumnId(0),
        unique: false,
        cluster_ratio: 0.93,
    });
    let f = b.add_table(
        fact,
        1_441_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(500_000, 0.0, 1e6, 90),
        ],
    );
    let addr = b.add_table(
        Table::new(
            "ADDR",
            vec![
                col("A_SK", ColumnType::Integer),
                col("A_STATE", ColumnType::Varchar(4)),
            ],
        ),
        50_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(50, 0.0, 1e6, 2).with_frequent(vec![
                (Value::Str("CA".into()), 9_000),
                (Value::Str("TX".into()), 6_000),
                (Value::Str("VT".into()), 200),
            ]),
        ],
    );
    // Stale beliefs plant the problem patterns learning discovers.
    *b.belief_mut().column_mut(addr, ColumnId(1)) = ColumnStats::uniform(5_000, 0.0, 1e6, 2);
    b.plant_stale_cluster_ratio(f, IndexId(0), 0.03);
    let db = b.build();
    let pool = [
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'TX'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'CA'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'VT' AND f_addr = 9",
        "SELECT a_state FROM addr, fact WHERE a_sk = f_addr AND f_addr = 3",
        "SELECT f_payload FROM fact WHERE f_addr = 12",
    ];
    let queries = picks
        .iter()
        .enumerate()
        .map(|(i, &p)| parse(&db, &format!("q{i}"), pool[p % pool.len()]).unwrap())
        .collect();
    Workload {
        name: name.into(),
        db,
        queries,
    }
}

fn fast_learning(seed: u64) -> LearningConfig {
    LearningConfig {
        random_plans: 12,
        seed: 0x6A10 ^ seed,
        ..LearningConfig::default()
    }
}

/// The KB's full image — default-graph triples plus dataset quads — as a
/// sorted line set, comparable across backends.
fn image(kb: &KnowledgeBase) -> Vec<String> {
    let mut lines: Vec<String> = kb.export().lines().map(str::to_string).collect();
    lines.sort();
    lines
}

fn assert_images_equal(cluster: &KnowledgeBase, oracle: &KnowledgeBase, context: &str) {
    assert_eq!(image(cluster), image(oracle), "triples differ: {context}");
    assert_eq!(
        cluster.template_count(),
        oracle.template_count(),
        "template counts differ: {context}"
    );
    assert_eq!(
        cluster.signature_count(),
        oracle.signature_count(),
        "signature index differs: {context}"
    );
    assert_eq!(
        cluster.workload_datasets(),
        oracle.workload_datasets(),
        "datasets differ: {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline differential: for random workloads, learner counts
    /// 1–4 and random publish batch sizes, the cluster-learned KB image
    /// (triples + signature index + datasets) is set-equal to sequential
    /// `learn_workload` over an in-memory backend.
    #[test]
    fn cluster_learning_equals_sequential_in_memory(
        picks in prop::collection::vec(0usize..5, 1..5),
        nodes in 1usize..=4,
        publish_batch in 1usize..4,
        seed in 0u64..3,
    ) {
        let w = quirky_workload("diff_mem", &picks);
        let learning = fast_learning(seed);
        let oracle = KnowledgeBase::new();
        learn_workload(&w, &oracle, &learning);
        let kb = KnowledgeBase::new();
        let report = learn_workload_cluster(&w, &kb, &ClusterConfig {
            nodes,
            publish_batch,
            learning,
        });
        prop_assert_eq!(report.nodes.len(), nodes);
        assert_images_equal(&kb, &oracle, &format!("nodes={nodes} picks={picks:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same differential over the production-shape backend: a sharded
    /// **durable** KB receiving concurrent batched publishes, then
    /// reopened from disk, still equals the sequential in-memory oracle.
    #[test]
    fn cluster_learning_equals_sequential_sharded_durable(
        picks in prop::collection::vec(0usize..5, 1..4),
        nodes in 1usize..=4,
        shards in 1usize..=4,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let w = quirky_workload("diff_durable", &picks);
        let learning = fast_learning(1);
        let oracle = KnowledgeBase::new();
        learn_workload(&w, &oracle, &learning);

        let dir = ScratchDir::new(&format!("learner-cluster-diff-{case}"));
        {
            let kb = KnowledgeBase::open_sharded_durable(dir.path(), shards).unwrap();
            learn_workload_cluster(&w, &kb, &ClusterConfig {
                nodes,
                publish_batch: 2,
                learning: learning.clone(),
            });
            assert_images_equal(&kb, &oracle, &format!("pre-reopen nodes={nodes} shards={shards}"));
        }
        // Reopen from disk: recovery must reproduce the same image and
        // rebuild the signature index.
        let kb = KnowledgeBase::open_sharded_durable(dir.path(), shards).unwrap();
        assert_images_equal(&kb, &oracle, &format!("post-reopen nodes={nodes} shards={shards}"));
    }
}

/// Learners publishing into a sharded durable KB while a matcher thread
/// continuously matches plans: the number of matched plans only grows,
/// the final image equals the sequential oracle, and a checkpointed
/// store reopens clean.
#[test]
fn stress_concurrent_matching_while_cluster_publishes() {
    let w = quirky_workload("stress", &[0, 1, 2, 3]);
    let learning = fast_learning(2);
    let cluster = ClusterConfig {
        nodes: 4,
        publish_batch: 1, // publish every template immediately: max interleaving
        learning: learning.clone(),
    };
    let oracle = KnowledgeBase::new();
    let seq = learn_workload(&w, &oracle, &learning);
    assert!(seq.templates_learned >= 1, "{seq:?}");

    let optimizer = Optimizer::new(&w.db);
    let plans: Vec<Qgm> = w
        .queries
        .iter()
        .map(|q| optimizer.optimize(q).unwrap())
        .collect();

    let dir = ScratchDir::new("learner-cluster-stress");
    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    let done = AtomicBool::new(false);
    let match_rounds = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let kb_ref = &kb;
        let plans = &plans;
        let db = &w.db;
        let done = &done;
        let match_rounds = &match_rounds;
        scope.spawn(move || {
            let cfg = MatchConfig::default();
            let mut last_matched = 0usize;
            loop {
                let stop_after = done.load(Ordering::Acquire);
                let matched = plans
                    .iter()
                    .filter(|plan| !match_plan(db, kb_ref, plan, &cfg).rewrites.is_empty())
                    .count();
                // Templates only accumulate, so a plan that matched once
                // keeps matching: coverage is monotone.
                assert!(
                    matched >= last_matched,
                    "match coverage regressed: {last_matched} -> {matched}"
                );
                last_matched = matched;
                match_rounds.fetch_add(1, Ordering::Relaxed);
                if stop_after {
                    break;
                }
            }
            assert!(last_matched >= 1, "the finished KB must match something");
        });
        learn_workload_cluster(&w, &kb, &cluster);
        done.store(true, Ordering::Release);
    });
    assert!(match_rounds.load(Ordering::Relaxed) >= 2);
    assert_images_equal(&kb, &oracle, "stress final image");

    // Checkpoint, reopen: the recovered KB still equals the oracle and
    // still serves matching.
    kb.compact().unwrap();
    drop(kb);
    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    assert_images_equal(&kb, &oracle, "post-checkpoint reopen");
    let matched = plans
        .iter()
        .filter(|p| {
            !match_plan(&w.db, &kb, p, &MatchConfig::default())
                .rewrites
                .is_empty()
        })
        .count();
    assert!(matched >= 1);
}

// ------------------------------------------------ dataset-scoped matching --

/// A two-table database plus an optimized plan over it.
fn setup_plan() -> (galo_catalog::Database, Qgm) {
    let mut b = DatabaseBuilder::new("datasets", SystemConfig::default_1gb());
    b.add_table(
        Table::new(
            "FACT",
            vec![
                col("F_K", ColumnType::Integer),
                col("F_V", ColumnType::Decimal),
            ],
        ),
        100_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(10_000, 0.0, 1e6, 8),
        ],
    );
    b.add_table(
        Table::new(
            "DIM",
            vec![
                col("D_K", ColumnType::Integer),
                col("D_A", ColumnType::Integer),
            ],
        ),
        1_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(50, 0.0, 50.0, 4),
        ],
    );
    let db = b.build();
    let q = parse(
        &db,
        "q",
        "SELECT f_v FROM fact, dim WHERE f_k = d_k AND d_a = 7",
    )
    .unwrap();
    let plan = Optimizer::new(&db).optimize(&q).unwrap();
    (db, plan)
}

fn scoped(dataset: &str) -> MatchConfig {
    MatchConfig {
        dataset: Some(dataset.to_string()),
        ..MatchConfig::default()
    }
}

#[test]
fn dataset_scoped_matching_never_crosses_workloads() {
    let (db, plan) = setup_plan();
    let kb = KnowledgeBase::new();
    let g = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).unwrap()]);
    // Three templates from workload A, two from workload B — all five
    // share the plan's shape and admit its cardinalities.
    let mut iris_by_workload: Vec<(String, Vec<String>)> = Vec::new();
    for (wl, count, salt0) in [("wa", 3u64, 10u64), ("wb", 2, 20)] {
        let mut iris = Vec::new();
        for i in 0..count {
            let mut tpl = abstract_plan(&db, &plan, plan.root(), &g, kb.fresh_id(salt0 + i));
            tpl.improvement = 0.25;
            tpl.source_workload = wl.to_string();
            kb.insert(&tpl);
            iris.push(vocab::template_iri(&tpl.id).str_value().to_string());
        }
        iris.sort();
        iris_by_workload.push((wl.to_string(), iris));
    }

    // The datasets are first-class: per-workload counts, shapes, stats.
    let datasets = kb.workload_datasets();
    assert_eq!(datasets.len(), 2);
    assert_eq!(datasets[0].workload, "wa");
    assert_eq!(datasets[0].templates, 3);
    assert_eq!(datasets[1].workload, "wb");
    assert_eq!(datasets[1].templates, 2);
    for ds in &datasets {
        assert_eq!(ds.signatures, 1, "one shared shape: {ds:?}");
        assert!((ds.avg_improvement - 0.25).abs() < 1e-12);
    }
    for (wl, iris) in &iris_by_workload {
        assert_eq!(&kb.dataset_template_iris(wl), iris);
    }

    // Scoped matching returns only the scoped dataset's templates — and
    // exactly the smallest IRI within it (the deterministic winner).
    let mut winners = Vec::new();
    for (wl, iris) in &iris_by_workload {
        let report = match_plan(&db, &kb, &plan, &scoped(wl));
        assert!(!report.rewrites.is_empty(), "dataset {wl} must match");
        for r in &report.rewrites {
            assert_eq!(&r.source_workload, wl, "leaked across datasets");
            assert!(iris.contains(&r.template_iri));
        }
        assert_eq!(report.rewrites[0].template_iri, iris[0]);
        winners.push(report.rewrites[0].template_iri.clone());
    }

    // A dataset that contributed nothing matches nothing — and prunes
    // before any probe executes.
    let empty = match_plan(&db, &kb, &plan, &scoped("nonexistent"));
    assert!(empty.rewrites.is_empty());
    assert!(empty.probes_pruned >= 1);
    assert_eq!(empty.probes_executed, 0);

    // Unrestricted matching equals the union: its winner is the smallest
    // IRI over both datasets' winners.
    let unrestricted = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert!(!unrestricted.rewrites.is_empty());
    winners.sort();
    assert_eq!(unrestricted.rewrites[0].template_iri, winners[0]);

    // The text oracle agrees with the compiled pipeline under every
    // dataset scope (the differential the probe IR is pinned by).
    for cfg in [
        MatchConfig::default(),
        scoped("wa"),
        scoped("wb"),
        scoped("nonexistent"),
    ] {
        let probe = match_plan(&db, &kb, &plan, &cfg);
        let text = match_plan_text(&db, &kb, &plan, &cfg);
        assert_eq!(
            probe.rewrites.len(),
            text.rewrites.len(),
            "{:?}",
            cfg.dataset
        );
        for (a, b) in probe.rewrites.iter().zip(&text.rewrites) {
            assert_eq!(a.template_iri, b.template_iri);
            assert_eq!(a.source_workload, b.source_workload);
            assert_eq!(a.guideline, b.guideline);
        }
    }
}

#[test]
fn dataset_scope_survives_export_import_and_sharding() {
    let (db, plan) = setup_plan();
    let kb = KnowledgeBase::new();
    let g = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).unwrap()]);
    for (wl, salt) in [("wa", 1u64), ("wb", 2)] {
        let mut tpl = abstract_plan(&db, &plan, plan.root(), &g, kb.fresh_id(salt));
        tpl.source_workload = wl.to_string();
        kb.insert(&tpl);
    }
    // Reindex from triples (import) must reconstruct the per-template
    // dataset, on a sharded backend too.
    let sharded = KnowledgeBase::open_sharded(3);
    sharded.import(&kb.export()).unwrap();
    for wl in ["wa", "wb"] {
        let report = match_plan(&db, &sharded, &plan, &scoped(wl));
        assert!(!report.rewrites.is_empty());
        assert!(report.rewrites.iter().all(|r| r.source_workload == wl));
    }
    assert_eq!(sharded.workload_datasets(), kb.workload_datasets());
}
