//! Cross-workload template reuse (paper Exp-2, §4.2): problem patterns
//! learned on TPC-DS must re-optimize queries of the IBM client workload.
//!
//! With exact range matching this reuse rate is 0 — the two schemas'
//! statistics (row sizes, page counts, base cardinalities) never land
//! inside each other's learned validity ranges. `MatchConfig::range_margin`
//! is the knob that widens the range tests at match time; this test pins
//! that a modest margin yields a nonzero reuse rate, so the
//! `examples/cross_workload.rs` scenario cannot silently regress to zero
//! again (the state ROADMAP.md called out after PR 1).

use galo_core::Galo;
use galo_workloads::{client, tpcds, Workload};

/// The margin the cross-workload example runs with: wide enough to bridge
/// the TPC-DS ↔ client statistics gap, narrow enough that matches stay
/// structurally and cardinality-plausible.
const CROSS_WORKLOAD_MARGIN: f64 = 4.0;

#[test]
fn tpcds_templates_reoptimize_client_queries_with_margin() {
    // A slice of TPC-DS is enough to learn reusable join patterns and
    // keeps the test inside unit-test budget.
    let full = tpcds::workload();
    let tp = Workload {
        name: full.name.clone(),
        db: full.db.clone(),
        queries: full.queries[..8].to_vec(),
    };
    let mut galo = Galo::new();
    let report = galo.learn(&tp, &galo_bench::learning_config(true));
    assert!(report.templates_learned >= 1, "learning must find patterns");

    let cl = client::workload();

    // Exact matching: no reuse (this is the regression the margin fixes).
    galo.match_cfg.range_margin = 1.0;
    let exact = galo.reoptimize_workload(&cl);
    let exact_matched = exact
        .per_query
        .iter()
        .filter(|q| q.template_sources.iter().any(|s| s == tp.db.name.as_str()))
        .count();
    assert_eq!(exact_matched, 0, "exact ranges must not match cross-schema");

    // Widened matching: nonzero reuse rate.
    galo.match_cfg.range_margin = CROSS_WORKLOAD_MARGIN;
    let widened = galo.reoptimize_workload(&cl);
    let cross_matched = widened
        .per_query
        .iter()
        .filter(|q| q.template_sources.iter().any(|s| s == tp.db.name.as_str()))
        .count();
    assert!(
        cross_matched >= 1,
        "a {CROSS_WORKLOAD_MARGIN}x margin must reuse TPC-DS templates on the client \
         workload (got 0 of {})",
        widened.per_query.len()
    );
    // Reuse must also *help*, not just match: at least one client query
    // runs faster under a TPC-DS-learned rewrite.
    let cross_improved = widened
        .improved()
        .iter()
        .filter(|q| q.template_sources.iter().any(|s| s == tp.db.name.as_str()))
        .count();
    assert!(
        cross_improved >= 1,
        "at least one client query must improve via a reused template \
         ({cross_matched} matched)"
    );
}
