//! The replication subsystem end to end: templates learned on remote
//! nodes travel to the primary as checksummed `Publish` frames over
//! fault-injected links, read replicas rebuild the primary's image from
//! the pulled mutation feed, and bounded-staleness serving stamps every
//! outcome with the replica epoch it was served at.
//!
//! The contract pinned here:
//! * **Exactly-once**: whatever the fault schedule (drop, duplicate,
//!   delay, truncate) and retry budget, an acknowledged publish is
//!   applied exactly once — the wire-built knowledge base equals the
//!   in-process oracle, byte for byte.
//! * **Replica equality**: a replica whose epoch equals the primary's
//!   holds the identical image.
//! * **Bounded staleness**: no serve ever succeeds with a lag above its
//!   declared bound, and rejections are typed and counted.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use galo_catalog::{
    col, ColumnId, ColumnStats, ColumnType, DatabaseBuilder, Index, IndexId, SystemConfig, Table,
    Value,
};
use galo_core::{
    learn_workload, learn_workload_cluster, learn_workload_replicated, loopback, match_plan, vocab,
    ClusterConfig, FaultPlan, FaultyLink, KnowledgeBase, LearningConfig, MatchConfig, PeerState,
    Primary, Publisher, Replica, ReplicationConfig, RetryPolicy, ServingTier, StatSketch, Template,
    TemplatePop, TemplateScan,
};
use galo_optimizer::Optimizer;
use galo_qgm::{GuidelineDoc, Qgm};
use galo_rdf::{
    parse_select, IndexedStore, Probe, ReadOnlyReplica, ReadOnlyStore, ServerError, Term,
    TripleStore,
};
use galo_sql::parse;
use galo_workloads::Workload;
use proptest::prelude::*;

/// The planted-flooding workload the learning tests use: queries whose
/// plans a learned template matches, plus shape variety.
fn quirky_workload(name: &str) -> Workload {
    let mut b = DatabaseBuilder::new(name, SystemConfig::default_1gb());
    let mut fact = Table::new(
        "FACT",
        vec![
            col("F_ADDR", ColumnType::Integer),
            col("F_PAYLOAD", ColumnType::Varchar(180)),
        ],
    );
    fact.add_index(Index {
        name: "F_ADDR_IX".into(),
        column: ColumnId(0),
        unique: false,
        cluster_ratio: 0.93,
    });
    let f = b.add_table(
        fact,
        1_441_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(500_000, 0.0, 1e6, 90),
        ],
    );
    let addr = b.add_table(
        Table::new(
            "ADDR",
            vec![
                col("A_SK", ColumnType::Integer),
                col("A_STATE", ColumnType::Varchar(4)),
            ],
        ),
        50_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(50, 0.0, 1e6, 2).with_frequent(vec![
                (Value::Str("CA".into()), 9_000),
                (Value::Str("TX".into()), 6_000),
                (Value::Str("VT".into()), 200),
            ]),
        ],
    );
    *b.belief_mut().column_mut(addr, ColumnId(1)) = ColumnStats::uniform(5_000, 0.0, 1e6, 2);
    b.plant_stale_cluster_ratio(f, IndexId(0), 0.03);
    let db = b.build();
    let pool = [
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'TX'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'CA'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'VT' AND f_addr = 9",
        "SELECT a_state FROM addr, fact WHERE a_sk = f_addr AND f_addr = 3",
        "SELECT f_payload FROM fact WHERE f_addr = 12",
    ];
    let queries = pool
        .iter()
        .enumerate()
        .map(|(i, sql)| parse(&db, &format!("q{i}"), sql).unwrap())
        .collect();
    Workload {
        name: name.into(),
        db,
        queries,
    }
}

fn fast_learning() -> LearningConfig {
    LearningConfig {
        random_plans: 12,
        seed: 0x6A10,
        ..LearningConfig::default()
    }
}

fn plans_of(w: &Workload) -> Vec<Qgm> {
    let optimizer = Optimizer::new(&w.db);
    w.queries
        .iter()
        .map(|q| optimizer.optimize(q).unwrap())
        .collect()
}

/// The sorted N-Quads image of a knowledge base — the differential's
/// unit of comparison.
fn image(kb: &KnowledgeBase) -> Vec<String> {
    let mut lines: Vec<String> = kb.export().lines().map(str::to_string).collect();
    lines.sort();
    lines
}

/// A hand-built two-pop template, distinct per `id`.
fn tpl(id: &str, workload: &str, card: f64) -> Template {
    Template {
        id: id.into(),
        pops: vec![
            TemplatePop {
                op_id: 1,
                pop_type: "HSJOIN".into(),
                cardinality: StatSketch::from_range(card, card * 2.0),
                scan: None,
                inputs: vec![2],
            },
            TemplatePop {
                op_id: 2,
                pop_type: "TBSCAN".into(),
                cardinality: StatSketch::from_range(10.0, 20.0),
                scan: Some(TemplateScan {
                    canonical_tabid: "T1".into(),
                    row_size: StatSketch::from_range(8.0, 8.0),
                    fpages: StatSketch::from_range(100.0, 200.0),
                    base_cardinality: StatSketch::from_range(1_000.0, 2_000.0),
                }),
                inputs: vec![],
            },
        ],
        guideline: GuidelineDoc::new(vec![]),
        improvement: 0.5,
        source_workload: workload.into(),
        fingerprint: format!("fp-{id}"),
        join_count: 1,
    }
}

// --------------------------------------------------- cluster differential --

/// Four learner nodes publishing over lossy links (with one straggler)
/// build the exact knowledge base the in-process cluster runner builds —
/// and match identically — with zero lost acknowledged publishes.
#[test]
fn replicated_learning_under_faults_matches_sequential_cluster() {
    let w = quirky_workload("replic");
    let primary = Primary::new(Arc::new(KnowledgeBase::new()));
    let cfg = ReplicationConfig {
        cluster: ClusterConfig {
            nodes: 4,
            publish_batch: 2,
            learning: fast_learning(),
        },
        fault: FaultPlan::lossy(0xFA57_F00D),
        retry: RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        },
        straggler: Some(2),
        straggler_stride: 3,
    };
    let report = learn_workload_replicated(&w, &primary, &cfg);

    assert_eq!(
        report.lost_publishes(),
        0,
        "acked means applied — nothing may be lost"
    );
    assert!(
        report.templates_mined() > 0,
        "the workload must actually mine templates"
    );
    assert!(report.quads_added() > 0);
    let faults = report.faults();
    assert!(
        faults.dropped > 0 && faults.duplicated > 0 && faults.truncated > 0,
        "the lossy plan must exercise the fault paths: {faults:?}"
    );
    assert!(
        report.nodes.iter().map(|n| n.publish.retries).sum::<u64>() > 0,
        "dropped frames must force retries"
    );
    assert!(report.nodes[2].straggler, "node 2 ran as the straggler");
    if report.nodes[2].templates_mined > 0 {
        // A straggler with work to publish sits out until its stride-th
        // turn, stretching the schedule past the stride.
        assert!(
            report.rounds >= cfg.straggler_stride,
            "rounds: {}",
            report.rounds
        );
    }

    // The oracle: the same per-node mining published in-process.
    let oracle = KnowledgeBase::new();
    learn_workload_cluster(&w, &oracle, &cfg.cluster);
    assert_eq!(
        image(primary.knowledge_base()),
        image(&oracle),
        "wire-published image must equal the in-process publish"
    );
    assert_eq!(
        primary.knowledge_base().template_count(),
        oracle.template_count()
    );
    assert_eq!(
        primary.knowledge_base().signature_count(),
        oracle.signature_count(),
        "the incrementally-merged signature index must equal the directly-built one"
    );

    // And the two knowledge bases *match* identically — the signature
    // index rebuilt from raw wire quads drives the same rewrites.
    let mcfg = MatchConfig::default();
    for (i, qgm) in plans_of(&w).iter().enumerate() {
        let via_wire = match_plan(&w.db, primary.knowledge_base(), qgm, &mcfg);
        let via_oracle = match_plan(&w.db, &oracle, qgm, &mcfg);
        assert_eq!(
            via_wire.rewrites.len(),
            via_oracle.rewrites.len(),
            "rewrite count for plan {i}"
        );
        for (a, b) in via_wire.rewrites.iter().zip(&via_oracle.rewrites) {
            assert_eq!(a.template_iri, b.template_iri, "plan {i}");
            assert_eq!(a.guideline, b.guideline, "plan {i}");
        }
    }
}

// ------------------------------------------------- replica follows primary --

/// A replica pulling an interleaved, fault-injected feed: whenever its
/// epoch equals the primary's, the images are identical — and it always
/// catches up in the end.
#[test]
fn replica_image_equals_primary_at_equal_epochs_under_faults() {
    let primary = Primary::new(Arc::new(KnowledgeBase::new()));
    let mut replica = Replica::new();
    let policy = RetryPolicy {
        max_attempts: 48,
        ..RetryPolicy::default()
    };

    // Learner link and replica link, both lossy in both directions.
    let (lc, ls) = loopback();
    let mut lclient = FaultyLink::new(lc, FaultPlan::lossy(0xC0FF_EE01));
    let mut lserver = FaultyLink::new(ls, FaultPlan::lossy(0xC0FF_EE02));
    let mut lpeer = PeerState::default();
    let mut publisher = Publisher::new();

    let (rc, rs) = loopback();
    let mut rclient = FaultyLink::new(rc, FaultPlan::lossy(0xD1CE_0001));
    let mut rserver = FaultyLink::new(rs, FaultPlan::lossy(0xD1CE_0002));
    let mut rpeer = PeerState::default();

    for round in 0..8usize {
        let t = tpl(&format!("follow-{round}"), "wl", 100.0 + round as f64);
        publisher
            .publish_templates(
                std::slice::from_ref(&t),
                &mut lclient,
                &mut || {
                    primary.serve_link(&mut lpeer, &mut lserver);
                    lserver.flush();
                },
                &policy,
            )
            .expect("publish within the retry budget");

        // The replica only pulls every other round — it lags in between.
        if round % 2 == 0 {
            let epoch = replica
                .catch_up(
                    &mut rclient,
                    &mut || {
                        primary.serve_link(&mut rpeer, &mut rserver);
                        rserver.flush();
                    },
                    &policy,
                )
                .expect("catch-up within the retry budget");
            assert_eq!(epoch, replica.replica_epoch());
        }
        // The pin: equal epochs imply equal images.
        if replica.replica_epoch() == primary.epoch() {
            assert_eq!(
                image(replica.knowledge_base()),
                image(primary.knowledge_base())
            );
        }
    }

    replica
        .catch_up(
            &mut rclient,
            &mut || {
                primary.serve_link(&mut rpeer, &mut rserver);
                rserver.flush();
            },
            &policy,
        )
        .expect("final catch-up");
    assert_eq!(replica.replica_epoch(), primary.epoch());
    assert_eq!(
        image(replica.knowledge_base()),
        image(primary.knowledge_base())
    );
    assert!(
        replica.stats.snapshots_loaded >= 1,
        "cold start was a snapshot transfer"
    );
    assert!(
        replica.stats.frames_applied > 0,
        "later rounds replayed incrementally"
    );
    assert_eq!(publisher.stats.lost, 0);
}

// ----------------------------------------------------- bounded staleness --

/// Bounded-staleness serving: every successful serve has `lag <= bound`,
/// in-sync serves equal a fresh primary match, and a stale replica is
/// rejected with the typed error until it catches up.
#[test]
fn bounded_staleness_serving_never_exceeds_the_bound() {
    let w = quirky_workload("replic_stale");
    let kb = Arc::new(KnowledgeBase::new());
    learn_workload(&w, &kb, &fast_learning());
    let primary = Primary::new(kb);
    let mut replica = Replica::new();

    let (rc, rs) = loopback();
    let mut rclient = FaultyLink::new(rc, FaultPlan::reliable(7));
    let mut rserver = FaultyLink::new(rs, FaultPlan::reliable(8));
    let mut rpeer = PeerState::default();
    let policy = RetryPolicy::default();

    replica
        .catch_up(
            &mut rclient,
            &mut || {
                primary.serve_link(&mut rpeer, &mut rserver);
                rserver.flush();
            },
            &policy,
        )
        .expect("cold start over a pre-loaded primary");
    assert_eq!(replica.replica_epoch(), primary.epoch());
    assert_eq!(
        replica.stats.snapshots_loaded, 1,
        "pre-loaded image arrives as a snapshot"
    );

    let rkb = replica.knowledge_base_arc();
    let tier = ServingTier::new(&w.db, &rkb, MatchConfig::default());
    let plans = plans_of(&w);

    // In sync: every plan serves at bound 0 and equals a fresh primary match.
    for (i, qgm) in plans.iter().enumerate() {
        let serve = replica
            .serve_bounded(&tier, qgm, primary.epoch(), 0)
            .expect("in-sync serve at bound 0");
        assert_eq!(serve.lag, 0);
        assert_eq!(serve.replica_epoch, replica.replica_epoch());
        let fresh = match_plan(
            &w.db,
            primary.knowledge_base(),
            qgm,
            &MatchConfig::default(),
        );
        assert_eq!(
            serve.outcome.report.rewrites.len(),
            fresh.rewrites.len(),
            "replica serve must equal a primary match for plan {i}"
        );
        for (a, b) in serve.outcome.report.rewrites.iter().zip(&fresh.rewrites) {
            assert_eq!(a.template_iri, b.template_iri, "plan {i}");
        }
    }

    // One more generation lands on the primary through the wire: the
    // replica is now one generation stale.
    let (lc, ls) = loopback();
    let mut lclient = FaultyLink::new(lc, FaultPlan::reliable(9));
    let mut lserver = FaultyLink::new(ls, FaultPlan::reliable(10));
    let mut lpeer = PeerState::default();
    Publisher::new()
        .publish_templates(
            &[tpl("late-arrival", "replic_stale", 77.0)],
            &mut lclient,
            &mut || {
                primary.serve_link(&mut lpeer, &mut lserver);
                lserver.flush();
            },
            &policy,
        )
        .expect("publish over a reliable link");

    let stale = replica
        .serve_bounded(&tier, &plans[0], primary.epoch(), 0)
        .expect_err("a lag-1 replica must be refused at bound 0");
    assert_eq!(stale.lag, 1);
    assert_eq!(stale.bound, 0);
    assert_eq!(stale.replica_epoch, replica.replica_epoch());
    assert_eq!(stale.primary_epoch, primary.epoch());
    assert_eq!(replica.stats.stale_rejections, 1);

    // A looser bound serves — stamped with the replica's older epoch.
    let bounded = replica
        .serve_bounded(&tier, &plans[0], primary.epoch(), 1)
        .expect("lag 1 within bound 1");
    assert_eq!(bounded.lag, 1);
    assert_eq!(bounded.replica_epoch, replica.replica_epoch());
    assert!(bounded.replica_epoch < primary.epoch());

    // Catch-up is an incremental frame replay (no second snapshot), after
    // which bound 0 serves again.
    replica
        .catch_up(
            &mut rclient,
            &mut || {
                primary.serve_link(&mut rpeer, &mut rserver);
                rserver.flush();
            },
            &policy,
        )
        .expect("incremental catch-up");
    assert_eq!(
        replica.stats.snapshots_loaded, 1,
        "catch-up replays frames, not snapshots"
    );
    assert!(replica.stats.frames_applied > 0);
    let synced = replica
        .serve_bounded(&tier, &plans[0], primary.epoch(), 0)
        .expect("back in sync");
    assert_eq!(synced.lag, 0);
    assert_eq!(image(&rkb), image(primary.knowledge_base()));
}

// ------------------------------------------------------ property: faults --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fault schedule crossed with any retry budget: acknowledged
    /// publishes are applied exactly once (the primary image sits between
    /// the acked-only oracle and the everything oracle), and a replica
    /// over its own faulty link converges to the identical image.
    #[test]
    fn fault_schedules_preserve_exactly_once_and_replica_equality(
        seed in 1u64..u64::MAX,
        drop in 0.0f64..0.30,
        duplicate in 0.0f64..0.25,
        delay in 0.0f64..0.25,
        truncate in 0.0f64..0.25,
        budget in 6usize..24,
    ) {
        let plan = FaultPlan { seed, drop, duplicate, delay, truncate };
        let primary = Primary::new(Arc::new(KnowledgeBase::new()));
        let (c, s) = loopback();
        let mut client = FaultyLink::new(c, plan);
        let mut server = FaultyLink::new(s, FaultPlan { seed: seed ^ 0x5EED, ..plan });
        let mut peer = PeerState::default();
        let mut publisher = Publisher::new();
        let policy = RetryPolicy { max_attempts: budget, ..RetryPolicy::default() };

        let batches: Vec<Vec<Template>> = (0..4)
            .map(|b| {
                (0..2)
                    .map(|i| tpl(&format!("p{b}-{i}"), "prop", ((b * 2 + i) as f64 + 1.0) * 50.0))
                    .collect()
            })
            .collect();

        let mut acked: Vec<&Vec<Template>> = Vec::new();
        for batch in &batches {
            let outcome = publisher.publish_templates(
                batch,
                &mut client,
                &mut || {
                    primary.serve_link(&mut peer, &mut server);
                    server.flush();
                },
                &policy,
            );
            if outcome.is_ok() {
                acked.push(batch);
            }
        }
        // Settle any frame still held by the delay fault, then freeze the
        // primary image.
        client.flush();
        primary.serve_link(&mut peer, &mut server);
        let primary_img = image(primary.knowledge_base());

        let oracle_acked = KnowledgeBase::new();
        for b in &acked {
            oracle_acked.insert_batch(b);
        }
        let oracle_all = KnowledgeBase::new();
        for b in &batches {
            oracle_all.insert_batch(b);
        }
        let acked_img = image(&oracle_acked);
        let all_img = image(&oracle_all);
        prop_assert!(
            acked_img.iter().all(|line| primary_img.contains(line)),
            "every acknowledged publish must be applied"
        );
        prop_assert!(
            primary_img.iter().all(|line| all_img.contains(line)),
            "nothing but published content may appear on the primary"
        );
        // Exactly-once at the template level: between what was surely
        // acked and what was ever sent, never more.
        let count = primary.knowledge_base().template_count();
        prop_assert!(count >= acked.len() * 2 && count <= 8, "template count {count}");

        // A replica over its own faulty link converges to the same image.
        let mut replica = Replica::new();
        let (rc, rs) = loopback();
        let mut rclient = FaultyLink::new(rc, FaultPlan { seed: seed ^ 0xFEED, ..plan });
        let mut rserver = FaultyLink::new(rs, FaultPlan { seed: seed ^ 0xF00D, ..plan });
        let mut rpeer = PeerState::default();
        let catch = RetryPolicy { max_attempts: 64, ..RetryPolicy::default() };
        let epoch = replica.catch_up(
            &mut rclient,
            &mut || {
                primary.serve_link(&mut rpeer, &mut rserver);
                rserver.flush();
            },
            &catch,
        );
        prop_assert!(epoch.is_ok(), "catch-up within 64 pulls: {epoch:?}");
        prop_assert_eq!(replica.replica_epoch(), primary.epoch());
        prop_assert_eq!(image(replica.knowledge_base()), primary_img);
    }
}

// --------------------------------------------------- GRAPH endpoint pin --

/// `GRAPH`-scoped dataset queries agree between the text endpoint and the
/// pre-parsed probe path, and only see the scoped workload's templates.
#[test]
fn graph_scoped_dataset_query_agrees_between_text_and_probe() {
    let kb = KnowledgeBase::new();
    kb.insert_batch(&[
        tpl("ga1", "wA", 10.0),
        tpl("ga2", "wA", 20.0),
        tpl("gb1", "wB", 30.0),
    ]);
    let server = kb.server();

    let text = format!(
        "PREFIX p: <{}> SELECT ?t ?fp WHERE {{ GRAPH <{}wA> {{ ?t p:{} ?fp . }} }}",
        vocab::PROP_NS,
        vocab::WORKLOAD_GRAPH_NS,
        vocab::HAS_PROBLEM_FINGERPRINT,
    );
    let via_text = server.query(&text).expect("text endpoint");
    let parsed = parse_select(&text).expect("the probe path parses the same text");
    let via_probe = server
        .probe_batch(&[Probe {
            query: &parsed,
            bind: vec![],
        }])
        .remove(0);

    let rows = |rs: &galo_rdf::ResultSet| -> Vec<String> {
        let mut out: Vec<String> = rs
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|t| t.as_ref().map_or("UNDEF".into(), |t| t.to_string()))
                    .collect::<Vec<_>>()
                    .join("\t")
            })
            .collect();
        out.sort();
        out
    };
    assert_eq!(
        rows(&via_text),
        rows(&via_probe),
        "probe ≡ text under dataset scope"
    );
    assert_eq!(
        via_text.len(),
        2,
        "only workload wA's two templates are in scope"
    );
    for i in 0..via_text.len() {
        let t = via_text.get(i, "t").unwrap().to_string();
        assert!(
            !t.contains("gb1"),
            "wB must be invisible under wA's graph: {t}"
        );
    }

    // A bound probe narrows within the same graph scope.
    let bound = server
        .probe_batch(&[Probe {
            query: &parsed,
            bind: vec![("t".into(), vocab::template_iri("ga1"))],
        }])
        .remove(0);
    assert_eq!(bound.len(), 1);
    assert_eq!(bound.get(0, "fp"), Some(&Term::lit("fp-ga1")));
}

// ------------------------------------------------------ read-only levels --

/// Write rejection at both levels: a [`ReadOnlyStore`] panics with the
/// typed [`ReadOnlyReplica`] payload at the `TripleStore` boundary, and a
/// replica's endpoint returns / panics the same type at the `FusekiLite`
/// boundary — while reads keep flowing.
#[test]
fn replica_writes_rejected_at_store_and_endpoint_level() {
    // TripleStore level.
    let mut inner = IndexedStore::new();
    inner.insert(Term::iri("urn:s"), Term::iri("urn:p"), Term::lit("o"));
    let mut guarded = ReadOnlyStore::new(Box::new(inner));
    assert_eq!(
        guarded.scan(None, None, None).len(),
        1,
        "reads pass through"
    );
    let panic = catch_unwind(AssertUnwindSafe(|| {
        guarded.insert(Term::iri("urn:s2"), Term::iri("urn:p"), Term::lit("o2"));
    }))
    .expect_err("a store-level write must panic");
    let reject = panic
        .downcast_ref::<ReadOnlyReplica>()
        .expect("panics with the typed rejection");
    assert!(!reject.op.is_empty());

    // FusekiLite level, on a real replica.
    let replica = Replica::new();
    let server = replica.knowledge_base().server();
    assert!(server.is_read_only());
    let err = server
        .update("INSERT DATA { <urn:a> <urn:b> <urn:c> . }")
        .expect_err("replica update must fail");
    assert!(matches!(err, ServerError::ReadOnlyReplica(_)), "{err}");
    let err = server
        .import("<urn:a> <urn:b> \"o\" .")
        .expect_err("replica import must fail");
    assert!(matches!(err, ServerError::ReadOnlyReplica(_)), "{err}");
    let panic = catch_unwind(AssertUnwindSafe(|| {
        server.insert_triples(vec![(
            Term::iri("urn:a"),
            Term::iri("urn:b"),
            Term::iri("urn:c"),
        )]);
    }))
    .expect_err("infallible write path must panic");
    let reject = panic
        .downcast_ref::<ReadOnlyReplica>()
        .expect("panics with the typed rejection");
    assert_eq!(reject.op, "insert_triples");
}
