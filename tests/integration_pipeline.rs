//! End-to-end integration: workload generation → offline learning →
//! knowledge-base persistence → online matching → re-optimization,
//! across every crate of the workspace.

use galo_core::{Galo, KnowledgeBase, LearningConfig, MatchConfig};
use galo_optimizer::Optimizer;
use galo_workloads::{tpcds, Workload};

/// A small slice of the TPC-DS workload containing problem-kernel queries
/// (indexes 2, 7, 12 are kernel slots) plus clean queries.
fn mini_tpcds() -> Workload {
    let full = tpcds::workload();
    let picks = [0usize, 2, 7, 12, 3];
    Workload {
        name: full.name.clone(),
        db: full.db.clone(),
        queries: picks.iter().map(|&i| full.queries[i].clone()).collect(),
    }
}

fn fast_cfg() -> LearningConfig {
    LearningConfig {
        threads: 2,
        probes_per_pred: 2,
        random_plans: 8,
        runs_per_plan: 3,
        max_subqueries_per_query: 40,
        ..LearningConfig::default()
    }
}

#[test]
fn learn_match_reoptimize_pipeline() {
    let w = mini_tpcds();
    let galo = Galo::new();
    let report = galo.learn(&w, &fast_cfg());
    assert!(
        report.templates_learned >= 1,
        "kernels must produce templates: {report:?}"
    );
    assert!(report.avg_improvement >= 0.15);

    let rep = galo.reoptimize_workload(&w);
    assert_eq!(rep.per_query.len(), w.queries.len());
    let improved = rep.improved();
    assert!(
        !improved.is_empty(),
        "at least one kernel query must be re-optimized"
    );
    for q in &improved {
        assert!(q.final_ms < q.original_ms);
        assert!(q.rewrites_matched >= 1);
    }
    // Average gain over improved queries is substantial (paper: 49%).
    assert!(
        rep.avg_gain_improved() > 0.2,
        "avg gain {:.2}",
        rep.avg_gain_improved()
    );
}

#[test]
fn knowledge_base_survives_persistence() {
    let w = mini_tpcds();
    let galo = Galo::new();
    let report = galo.learn(&w, &fast_cfg());
    assert!(report.templates_learned >= 1);

    // Export, reload into a fresh KB, and verify matching still works.
    let dump = galo.kb.export();
    let kb2 = KnowledgeBase::new();
    kb2.import(&dump).expect("import n-triples");
    assert_eq!(kb2.template_count(), report.templates_learned);

    let optimizer = Optimizer::new(&w.db);
    let mut matched_after_reload = 0;
    for q in &w.queries {
        let plan = optimizer.optimize(q).expect("plans");
        let m = galo_core::match_plan(&w.db, &kb2, &plan, &MatchConfig::default());
        matched_after_reload += usize::from(!m.rewrites.is_empty());
    }
    assert!(matched_after_reload >= 1, "reloaded KB must still match");
}

#[test]
fn matching_against_empty_kb_is_clean_noop() {
    let w = mini_tpcds();
    let galo = Galo::new();
    let rep = galo.reoptimize_workload(&w);
    assert_eq!(rep.per_query.len(), w.queries.len());
    assert!(rep.improved().is_empty());
    for q in &rep.per_query {
        assert_eq!(q.rewrites_matched, 0);
        assert_eq!(q.original_ms, q.final_ms);
    }
}

#[test]
fn learned_gains_are_stable_across_runs() {
    let w = mini_tpcds();
    let galo1 = Galo::new();
    let galo2 = Galo::new();
    let r1 = galo1.learn(&w, &fast_cfg());
    let r2 = galo2.learn(&w, &fast_cfg());
    assert_eq!(r1.templates_learned, r2.templates_learned);
    let g1: Vec<String> = r1.learned.iter().map(|l| l.subquery_name.clone()).collect();
    let g2: Vec<String> = r2.learned.iter().map(|l| l.subquery_name.clone()).collect();
    assert_eq!(g1, g2, "learning must be deterministic");
}
