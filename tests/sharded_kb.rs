//! The sharded knowledge base end to end: a `ShardedStore` backend is a
//! drop-in for the single-store KB (identical matching), concurrent
//! learners appending templates through per-shard locks lose nothing, a
//! durable sharded KB recovers every shard on reopen — including a torn
//! write-ahead log on one shard — and template-affine routing keeps each
//! template's triples on one shard.

use galo_catalog::{col, ColumnStats, ColumnType, Database, DatabaseBuilder, SystemConfig, Table};
use galo_core::{abstract_plan, match_plan, vocab, KnowledgeBase, MatchConfig, Template};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, GuidelineDoc, Qgm};
use galo_rdf::{ScratchDir, ShardedStore};
use galo_sql::parse;

/// A two-table database plus an optimized plan over it — the smallest
/// material a template can be abstracted from.
fn setup() -> (Database, Qgm) {
    let mut b = DatabaseBuilder::new("sharded", SystemConfig::default_1gb());
    b.add_table(
        Table::new(
            "FACT",
            vec![
                col("F_K", ColumnType::Integer),
                col("F_V", ColumnType::Decimal),
            ],
        ),
        100_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(10_000, 0.0, 1e6, 8),
        ],
    );
    b.add_table(
        Table::new(
            "DIM",
            vec![
                col("D_K", ColumnType::Integer),
                col("D_A", ColumnType::Integer),
            ],
        ),
        1_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(50, 0.0, 50.0, 4),
        ],
    );
    let db = b.build();
    let q = parse(
        &db,
        "q",
        "SELECT f_v FROM fact, dim WHERE f_k = d_k AND d_a = 7",
    )
    .unwrap();
    let plan = Optimizer::new(&db).optimize(&q).unwrap();
    (db, plan)
}

fn template(db: &Database, plan: &Qgm, kb: &KnowledgeBase, salt: u64, workload: &str) -> Template {
    let g = GuidelineDoc::new(vec![guideline_from_plan(plan, plan.root()).unwrap()]);
    let mut tpl = abstract_plan(db, plan, plan.root(), &g, kb.fresh_id(salt));
    tpl.improvement = 0.4;
    tpl.source_workload = workload.to_string();
    tpl
}

#[test]
fn sharded_kb_matches_exactly_like_the_single_store_kb() {
    let (db, plan) = setup();
    let single = KnowledgeBase::new();
    let sharded = KnowledgeBase::open_sharded(4);
    // Same templates into both (ids must agree, so reuse the abstraction).
    for salt in 0..3u64 {
        let tpl = template(&db, &plan, &single, salt, "tpcds");
        single.insert(&tpl);
        sharded.insert(&tpl);
    }
    assert_eq!(sharded.template_count(), single.template_count());
    let cfg = MatchConfig::default();
    let a = match_plan(&db, &single, &plan, &cfg);
    let b = match_plan(&db, &sharded, &plan, &cfg);
    assert_eq!(a.rewrites.len(), b.rewrites.len());
    assert!(!b.rewrites.is_empty());
    for (x, y) in a.rewrites.iter().zip(&b.rewrites) {
        assert_eq!(x.template_iri, y.template_iri);
        assert_eq!(x.guideline, y.guideline);
        assert_eq!(x.segment_op_id, y.segment_op_id);
    }
    // Export/import between the backends round-trips.
    let kb2 = KnowledgeBase::with_backend(Box::new(ShardedStore::new(3)));
    kb2.import(&single.export()).unwrap();
    assert_eq!(kb2.template_count(), single.template_count());
    assert_eq!(
        match_plan(&db, &kb2, &plan, &cfg).rewrites.len(),
        a.rewrites.len()
    );
}

#[test]
fn concurrent_learners_append_without_losing_templates() {
    let (db, plan) = setup();
    let kb = KnowledgeBase::open_sharded(4);
    let per_thread = 8u64;
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let kb = &kb;
            let db = &db;
            let plan = &plan;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let tpl = template(db, plan, kb, t * 1000 + i, "tpcds");
                    kb.insert(&tpl);
                }
            });
        }
    });
    assert_eq!(kb.template_count(), 32, "no template lost to concurrency");
    let stats = kb.shard_stats().expect("sharded backend");
    assert_eq!(stats.len(), 4);
    assert_eq!(
        stats.iter().map(|s| s.triples).sum::<usize>(),
        kb.server().len()
    );
    assert!(
        stats.iter().filter(|s| s.triples > 0).count() > 1,
        "templates must spread across shards: {stats:?}"
    );
    // The signature index tracked every concurrent insert.
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert_eq!(report.rewrites.len(), 1);
}

#[test]
fn sharded_durable_kb_recovers_all_shards() {
    let (db, plan) = setup();
    let dir = ScratchDir::new("sharded-kb-reopen");
    let (stats_before, iri, sig) = {
        let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
        let tpl = template(&db, &plan, &kb, 1, "tpcds");
        kb.insert(&tpl);
        for salt in 2..10u64 {
            kb.insert(&template(&db, &plan, &kb, salt, "tpcds"));
        }
        assert_eq!(kb.template_count(), 9);
        (
            kb.shard_stats().unwrap(),
            vocab::template_iri(&tpl.id).str_value().to_string(),
            KnowledgeBase::template_signature(&tpl),
        )
    };
    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    assert_eq!(kb.template_count(), 9);
    assert_eq!(
        kb.shard_stats().unwrap(),
        stats_before,
        "recovered shard counts must equal what was learned"
    );
    assert!(kb.candidate_templates(sig).contains(&iri));
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert!(!report.rewrites.is_empty(), "recovered KB serves matching");
    // Compaction fans out per shard and is transparent (it rotates the
    // WALs, so recapture the stats — the WAL-pressure counters reset).
    kb.compact().unwrap();
    let stats_compacted = kb.shard_stats().unwrap();
    assert!(stats_compacted.iter().all(|s| s.wal_records == 0));
    drop(kb);
    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    assert_eq!(kb.template_count(), 9);
    assert_eq!(kb.shard_stats().unwrap(), stats_compacted);
}

#[test]
fn torn_wal_on_one_shard_keeps_checkpointed_templates_matchable() {
    let (db, plan) = setup();
    let dir = ScratchDir::new("sharded-kb-torn");
    let (iri_a, sig) = {
        let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
        let a = template(&db, &plan, &kb, 1, "tpcds");
        kb.insert(&a);
        // Checkpoint template A across all shards, then keep writing —
        // the "process" dies while later templates are mid-journal.
        kb.compact().unwrap();
        for salt in 2..6u64 {
            kb.insert(&template(&db, &plan, &kb, salt, "tpcds"));
        }
        (
            vocab::template_iri(&a.id).str_value().to_string(),
            KnowledgeBase::template_signature(&a),
        )
    };
    // Tear the newest WAL of whichever shard wrote the most post-
    // checkpoint data.
    let mut torn_any = false;
    for k in 0..4 {
        let shard_dir = dir.path().join(format!("shard-{k:04}"));
        let mut wals: Vec<_> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .collect();
        wals.sort();
        let Some(wal) = wals.pop() else { continue };
        let len = std::fs::metadata(&wal).unwrap().len();
        if len > 100 {
            let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
            f.set_len(len - len / 3).unwrap();
            torn_any = true;
            break;
        }
    }
    assert!(
        torn_any,
        "at least one shard journaled post-checkpoint data"
    );

    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    // Template A was checkpointed on every shard before the crash: fully
    // recovered, indexed, matchable.
    assert!(kb.candidate_templates(sig).contains(&iri_a));
    assert!(kb.guideline_of(&iri_a).is_some());
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert!(!report.rewrites.is_empty());
    // Reopening again is stable (the torn tail was truncated once).
    let count = kb.server().len();
    drop(kb);
    let kb2 = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    assert_eq!(kb2.server().len(), count);
}

#[test]
fn concurrent_writers_with_background_compactor_match_sequential_oracle() {
    let (db, plan) = setup();
    // Pre-build every template with explicit ids: both images must
    // publish byte-identical triples, and `fresh_id` is allocation-order
    // dependent. Thread `t` publishes its 12 templates and retracts
    // every third one — threads touch disjoint templates, so any
    // interleaving must converge to the same image.
    let g = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).unwrap()]);
    let templates: Vec<Vec<Template>> = (0..4)
        .map(|t| {
            (0..12)
                .map(|i| {
                    let mut tpl =
                        abstract_plan(&db, &plan, plan.root(), &g, format!("cw{t}_{i:02}"));
                    tpl.improvement = 0.4;
                    tpl.source_workload = "tpcds".to_string();
                    tpl
                })
                .collect()
        })
        .collect();

    let image = |kb: &KnowledgeBase| {
        let mut fps = kb.fingerprints();
        fps.sort();
        let shard_triples: Vec<usize> = kb
            .shard_stats()
            .expect("sharded backend")
            .iter()
            .map(|s| s.triples)
            .collect();
        (kb.template_count(), kb.server().len(), fps, shard_triples)
    };

    // Concurrent run: 4 writer threads race while a background compactor
    // folds WALs under them.
    let dir = ScratchDir::new("sharded-kb-concurrent-policy");
    let concurrent = {
        let kb = galo_core::KbBuilder::new()
            .durable_dir(dir.path())
            .shards(4)
            .compaction_policy(galo_rdf::CompactionPolicy {
                wal_records: 64,
                min_interval: std::time::Duration::from_millis(1),
                poll_interval: std::time::Duration::from_millis(1),
                idle_divisor: 2,
                ..Default::default()
            })
            .build_kb()
            .unwrap();
        let stats = kb.compactor_stats().expect("policy installed");
        std::thread::scope(|scope| {
            for slots in &templates {
                let kb = &kb;
                scope.spawn(move || {
                    for (i, tpl) in slots.iter().enumerate() {
                        kb.insert(tpl);
                        if i % 3 == 2 {
                            kb.remove_template(vocab::template_iri(&tpl.id).str_value());
                        }
                    }
                });
            }
        });
        assert!(
            stats.compacted() + stats.idle_compacted() > 0,
            "the compactor must have folded under the writers"
        );
        assert_eq!(stats.failed(), 0, "{:?}", stats.last_error());
        assert!(kb
            .storage_pressures()
            .iter()
            .all(|p| p.compactions_failed == 0));
        image(&kb)
    };
    // What survives a full restart (compactor long gone).
    let reopened = image(&KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap());
    assert_eq!(reopened, concurrent, "reopen must reproduce the live image");

    // Sequential oracle: same ops, one thread, no compactor, explicit
    // checkpoint before reopen.
    let oracle_dir = ScratchDir::new("sharded-kb-concurrent-oracle");
    {
        let kb = KnowledgeBase::open_sharded_durable(oracle_dir.path(), 4).unwrap();
        for slots in &templates {
            for (i, tpl) in slots.iter().enumerate() {
                kb.insert(tpl);
                if i % 3 == 2 {
                    kb.remove_template(vocab::template_iri(&tpl.id).str_value());
                }
            }
        }
        kb.compact().unwrap();
    }
    let oracle_kb = KnowledgeBase::open_sharded_durable(oracle_dir.path(), 4).unwrap();
    let oracle = image(&oracle_kb);
    assert_eq!(
        reopened, oracle,
        "concurrent writers + background compaction must converge to the \
         sequential image"
    );
    // 4 threads × (12 published − 4 retracted) = 32 live templates.
    assert_eq!(oracle.0, 32);
    let report = match_plan(&db, &oracle_kb, &plan, &MatchConfig::default());
    assert!(!report.rewrites.is_empty());
}

#[test]
fn template_affine_routing_keeps_templates_whole() {
    let (db, plan) = setup();
    let kb = KnowledgeBase::open_sharded(4);
    for salt in 0..12u64 {
        kb.insert(&template(&db, &plan, &kb, salt, "w"));
    }
    // Every template's pops resolve alongside their template node: fetch
    // each guideline and match — any split template would break the
    // per-shard keyed joins that back these lookups.
    let fps = kb.fingerprints();
    assert_eq!(fps.len(), 12);
    for (iri, _) in &fps {
        assert!(kb.guideline_of(iri).is_some(), "guideline of {iri}");
    }
    let stats = kb.shard_stats().unwrap();
    let total: usize = stats.iter().map(|s| s.triples).sum();
    assert_eq!(total, kb.server().len());
}
