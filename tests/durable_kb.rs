//! The durable knowledge base end to end: templates written through
//! `KnowledgeBase::open_durable` survive process restarts (here: drop and
//! reopen), the signature index is rebuilt from the recovered triples, a
//! torn write-ahead-log tail loses at most the uncommitted record, and
//! `FusekiLite::import`/`export` round-trips — named-graph N-Quads lines
//! included — through a `DurableStore`-backed dataset.

use galo_catalog::{col, ColumnStats, ColumnType, Database, DatabaseBuilder, SystemConfig, Table};
use galo_core::{abstract_plan, match_plan, vocab, KnowledgeBase, MatchConfig, Template};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, GuidelineDoc, Qgm};
use galo_rdf::{FusekiLite, ScratchDir, Term};
use galo_sql::parse;

/// A two-table database plus an optimized plan over it — the smallest
/// material a template can be abstracted from.
fn setup() -> (Database, Qgm) {
    let mut b = DatabaseBuilder::new("durable", SystemConfig::default_1gb());
    b.add_table(
        Table::new(
            "FACT",
            vec![
                col("F_K", ColumnType::Integer),
                col("F_V", ColumnType::Decimal),
            ],
        ),
        100_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(10_000, 0.0, 1e6, 8),
        ],
    );
    b.add_table(
        Table::new(
            "DIM",
            vec![
                col("D_K", ColumnType::Integer),
                col("D_A", ColumnType::Integer),
            ],
        ),
        1_000,
        vec![
            ColumnStats::uniform(1_000, 0.0, 1_000.0, 4),
            ColumnStats::uniform(50, 0.0, 50.0, 4),
        ],
    );
    let db = b.build();
    let q = parse(
        &db,
        "q",
        "SELECT f_v FROM fact, dim WHERE f_k = d_k AND d_a = 7",
    )
    .unwrap();
    let plan = Optimizer::new(&db).optimize(&q).unwrap();
    (db, plan)
}

fn template(db: &Database, plan: &Qgm, kb: &KnowledgeBase, salt: u64, workload: &str) -> Template {
    let g = GuidelineDoc::new(vec![guideline_from_plan(plan, plan.root()).unwrap()]);
    let mut tpl = abstract_plan(db, plan, plan.root(), &g, kb.fresh_id(salt));
    tpl.improvement = 0.4;
    tpl.source_workload = workload.to_string();
    tpl
}

/// Newest write-ahead log in a durable store directory (the kill-and-
/// reopen tests truncate it to simulate a crash mid-write).
fn newest_wal(dir: &std::path::Path) -> std::path::PathBuf {
    let mut wals: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    wals.sort();
    wals.pop().expect("durable dir holds a wal")
}

#[test]
fn templates_survive_reopen_with_signature_index() {
    let (db, plan) = setup();
    let dir = ScratchDir::new("kb-reopen");
    let (iri, sig) = {
        let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
        let tpl = template(&db, &plan, &kb, 1, "tpcds");
        kb.insert(&tpl);
        assert_eq!(kb.template_count(), 1);
        (
            vocab::template_iri(&tpl.id).str_value().to_string(),
            KnowledgeBase::template_signature(&tpl),
        )
    };
    // A fresh process: recovery replays the log and reindexes.
    let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
    assert_eq!(kb.template_count(), 1);
    assert_eq!(kb.workloads(), vec!["tpcds".to_string()]);
    assert_eq!(kb.candidate_templates(sig), vec![iri.clone()]);
    let (_, source) = kb.guideline_of(&iri).expect("guideline recovered");
    assert_eq!(source, "tpcds");
    // The recovered KB matches plans — the online path works post-crash.
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert_eq!(report.rewrites.len(), 1);
    assert_eq!(report.rewrites[0].template_iri, iri);
}

#[test]
fn compaction_is_transparent_to_the_kb() {
    let (db, plan) = setup();
    let dir = ScratchDir::new("kb-compact");
    {
        let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
        kb.insert(&template(&db, &plan, &kb, 1, "tpcds"));
        kb.compact().unwrap();
        // Post-compaction inserts land in the rotated log.
        kb.insert(&template(&db, &plan, &kb, 2, "client"));
        assert_eq!(kb.template_count(), 2);
    }
    let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
    assert_eq!(kb.template_count(), 2);
    let mut workloads = kb.workloads();
    workloads.sort();
    assert_eq!(workloads, vec!["client".to_string(), "tpcds".to_string()]);
    assert_eq!(
        match_plan(&db, &kb, &plan, &MatchConfig::default())
            .rewrites
            .len(),
        1
    );
}

#[test]
fn kill_and_reopen_recovers_every_committed_template() {
    let (db, plan) = setup();
    let dir = ScratchDir::new("kb-kill");
    let (iri_a, sig) = {
        let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
        let a = template(&db, &plan, &kb, 1, "tpcds");
        kb.insert(&a);
        // Checkpoint template A, then start writing template B into the
        // fresh log — the "process" dies while B is mid-journal.
        kb.compact().unwrap();
        kb.insert(&template(&db, &plan, &kb, 2, "tpcds"));
        (
            vocab::template_iri(&a.id).str_value().to_string(),
            KnowledgeBase::template_signature(&a),
        )
    };
    // Tear the log mid-record: everything before the torn record is
    // committed, the torn record itself is dropped silently.
    let wal = newest_wal(dir.path());
    let len = std::fs::metadata(&wal).unwrap().len();
    assert!(len > 0, "template B reached the log");
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len / 2).unwrap();
    drop(f);

    let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
    // Template A was checkpointed before the crash: fully recovered,
    // indexed, and matchable.
    assert!(kb.candidate_templates(sig).contains(&iri_a));
    assert!(kb.guideline_of(&iri_a).is_some());
    let report = match_plan(&db, &kb, &plan, &MatchConfig::default());
    assert!(!report.rewrites.is_empty(), "recovered template must match");
    // Reopening after recovery is stable (the torn tail was truncated,
    // not re-read differently each time).
    let count = kb.server().len();
    drop(kb);
    let kb2 = KnowledgeBase::open_durable(dir.path()).unwrap();
    assert_eq!(kb2.server().len(), count);
}

#[test]
fn fuseki_import_export_roundtrips_through_durable_dataset() {
    let dir = ScratchDir::new("fuseki-roundtrip");
    let graph = Term::iri("http://galo/kb/graph/workload/tpcds");
    let dump = {
        let f = FusekiLite::open_durable(dir.path()).unwrap();
        f.insert_triples((0..20u32).map(|i| {
            (
                Term::iri(format!("http://galo/qep/pop/{i}")),
                Term::iri("http://galo/qep/property/hasEstimateCardinality"),
                Term::lit(format!("{}", i * 100)),
            )
        }));
        f.insert_triples_in(
            graph.clone(),
            [(
                Term::iri("http://t/1"),
                Term::iri("http://p"),
                Term::lit("a"),
            )],
        );
        f.export()
    };
    // Import replaces a durable dataset's contents; the clear and every
    // inserted quad are journaled, so the import survives a reopen.
    let dir2 = ScratchDir::new("fuseki-roundtrip-2");
    {
        let f2 = FusekiLite::open_durable(dir2.path()).unwrap();
        f2.insert_triples([(
            Term::iri("http://stale"),
            Term::iri("http://p"),
            Term::lit("dropped by import"),
        )]);
        assert_eq!(f2.import(&dump).unwrap(), 20);
    }
    let f2 = FusekiLite::open_durable(dir2.path()).unwrap();
    assert_eq!(f2.len(), 20);
    assert_eq!(f2.graph_names(), vec![graph.clone()]);
    assert!(
        f2.query(
            "SELECT ?s WHERE { ?s <http://galo/qep/property/hasEstimateCardinality> \"500\" . }"
        )
        .unwrap()
        .len()
            == 1
    );
    // The N-Quads line for the named graph round-tripped.
    let tagged = f2.with_store(|st| {
        let gid = st.term_id(&graph).expect("graph interned");
        st.scan_in(gid, None, None, None).len()
    });
    assert_eq!(tagged, 1);
    assert_eq!(f2.export(), dump);
}

#[test]
fn kb_import_reindexes_durable_backend_after_reopen() {
    let (db, plan) = setup();
    // Dump a template from an in-memory KB, import it into a durable one.
    let kb_mem = KnowledgeBase::new();
    let tpl = template(&db, &plan, &kb_mem, 7, "tpcds");
    kb_mem.insert(&tpl);
    let dump = kb_mem.export();
    let sig = KnowledgeBase::template_signature(&tpl);
    let iri = vocab::template_iri(&tpl.id).str_value().to_string();

    let dir = ScratchDir::new("kb-import");
    {
        let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
        kb.import(&dump).unwrap();
        assert_eq!(kb.candidate_templates(sig), vec![iri.clone()]);
    }
    // The signature index is rebuilt from disk on reopen, not remembered.
    let kb = KnowledgeBase::open_durable(dir.path()).unwrap();
    assert_eq!(kb.template_count(), 1);
    assert_eq!(kb.candidate_templates(sig), vec![iri]);
    assert_eq!(kb.export(), dump);
}
