//! The online serving tier end to end: every result the tier serves —
//! cold, cached, batched, or raced — must equal a fresh uncached
//! [`match_plan`] against the same knowledge-base state. The epoch
//! seqlock is the only validation mechanism, so these tests attack it
//! from every side: each mutator must invalidate, concurrent learner
//! publishes must never let a stale outcome through, and the admission
//! queue must deliver every plan exactly once.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use galo_catalog::{
    col, ColumnId, ColumnStats, ColumnType, DatabaseBuilder, Index, IndexId, SystemConfig, Table,
    Value,
};
use galo_core::{
    abstract_plan, learn_workload, learn_workload_cluster, match_plan, vocab, AdmissionQueue,
    ClusterConfig, KnowledgeBase, LearningConfig, MatchConfig, MatchReport, ProbeCache,
    ServeOutcome, ServingTier,
};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, GuidelineDoc, Qgm};
use galo_sql::parse;
use galo_workloads::Workload;

/// The planted-flooding workload the learning tests use: queries whose
/// plans a learned template matches, plus shape variety.
fn quirky_workload(name: &str) -> Workload {
    let mut b = DatabaseBuilder::new(name, SystemConfig::default_1gb());
    let mut fact = Table::new(
        "FACT",
        vec![
            col("F_ADDR", ColumnType::Integer),
            col("F_PAYLOAD", ColumnType::Varchar(180)),
        ],
    );
    fact.add_index(Index {
        name: "F_ADDR_IX".into(),
        column: ColumnId(0),
        unique: false,
        cluster_ratio: 0.93,
    });
    let f = b.add_table(
        fact,
        1_441_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(500_000, 0.0, 1e6, 90),
        ],
    );
    let addr = b.add_table(
        Table::new(
            "ADDR",
            vec![
                col("A_SK", ColumnType::Integer),
                col("A_STATE", ColumnType::Varchar(4)),
            ],
        ),
        50_000,
        vec![
            ColumnStats::uniform(50_000, 0.0, 50_000.0, 4),
            ColumnStats::uniform(50, 0.0, 1e6, 2).with_frequent(vec![
                (Value::Str("CA".into()), 9_000),
                (Value::Str("TX".into()), 6_000),
                (Value::Str("VT".into()), 200),
            ]),
        ],
    );
    *b.belief_mut().column_mut(addr, ColumnId(1)) = ColumnStats::uniform(5_000, 0.0, 1e6, 2);
    b.plant_stale_cluster_ratio(f, IndexId(0), 0.03);
    let db = b.build();
    let pool = [
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'TX'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'CA'",
        "SELECT f_payload FROM addr, fact WHERE a_sk = f_addr AND a_state = 'VT' AND f_addr = 9",
        "SELECT a_state FROM addr, fact WHERE a_sk = f_addr AND f_addr = 3",
        "SELECT f_payload FROM fact WHERE f_addr = 12",
    ];
    let queries = pool
        .iter()
        .enumerate()
        .map(|(i, sql)| parse(&db, &format!("q{i}"), sql).unwrap())
        .collect();
    Workload {
        name: name.into(),
        db,
        queries,
    }
}

fn fast_learning() -> LearningConfig {
    LearningConfig {
        random_plans: 12,
        seed: 0x6A10,
        ..LearningConfig::default()
    }
}

fn plans_of(w: &Workload) -> Vec<Qgm> {
    let optimizer = Optimizer::new(&w.db);
    w.queries
        .iter()
        .map(|q| optimizer.optimize(q).unwrap())
        .collect()
}

/// Everything a served report must share with an uncached match.
/// `match_ms` is wall time and `probes_reused` only exists on the
/// serving path, so neither participates.
fn assert_reports_equal(served: &MatchReport, fresh: &MatchReport, context: &str) {
    assert_eq!(
        served.rewrites.len(),
        fresh.rewrites.len(),
        "rewrite count: {context}"
    );
    for (a, b) in served.rewrites.iter().zip(&fresh.rewrites) {
        assert_eq!(a.segment_op_id, b.segment_op_id, "{context}");
        assert_eq!(a.template_iri, b.template_iri, "{context}");
        assert_eq!(a.source_workload, b.source_workload, "{context}");
        assert_eq!(a.guideline, b.guideline, "{context}");
    }
    assert_eq!(served.probes_pruned, fresh.probes_pruned, "{context}");
    assert_eq!(served.probes_executed, fresh.probes_executed, "{context}");
    assert_eq!(
        served.candidates_considered, fresh.candidates_considered,
        "admission considered: {context}"
    );
    assert_eq!(
        served.admission_rejects_card, fresh.admission_rejects_card,
        "admission card rejects: {context}"
    );
    assert_eq!(
        served.admission_rejects_scan, fresh.admission_rejects_scan,
        "admission scan rejects: {context}"
    );
}

// ------------------------------------------------------------ differential --

/// Cold serve, cached serve and the uncached matcher agree under every
/// configuration — and the hit path is actually a hit.
#[test]
fn serve_equals_uncached_match_across_configs() {
    let w = quirky_workload("serve_diff");
    let kb = KnowledgeBase::new();
    learn_workload(&w, &kb, &fast_learning());
    let plans = plans_of(&w);

    for cfg in [
        MatchConfig::default(),
        MatchConfig {
            range_margin: 2.0,
            ..MatchConfig::default()
        },
        MatchConfig {
            dataset: Some("serve_diff".into()),
            ..MatchConfig::default()
        },
        MatchConfig {
            dataset: Some("elsewhere".into()),
            ..MatchConfig::default()
        },
        MatchConfig {
            sketch_trim: 0.05,
            ..MatchConfig::default()
        },
    ] {
        let tier = ServingTier::new(&w.db, &kb, cfg.clone());
        // Two pool plans may share a fingerprint (same shape, same
        // estimates, same qualifiers — the match outcome is provably
        // identical, only the predicate constant differs), so "must
        // miss" holds per fingerprint, not per plan.
        let mut seen = std::collections::HashSet::new();
        for (i, plan) in plans.iter().enumerate() {
            let fresh = match_plan(&w.db, &kb, plan, &cfg);
            let cold = tier.serve(plan);
            assert_eq!(
                cold.report.cache_hit,
                !seen.insert(cold.fingerprint),
                "first serve of a new fingerprint must miss (plan {i})"
            );
            assert_eq!(cold.epoch, Some(kb.epoch()), "quiescent KB: validated");
            assert_reports_equal(&cold.report, &fresh, &format!("cold plan {i}"));

            let warm = tier.serve(plan);
            assert!(warm.report.cache_hit, "second serve must hit");
            assert_eq!(warm.fingerprint, cold.fingerprint);
            assert_reports_equal(&warm.report, &fresh, &format!("warm plan {i}"));
        }
        let c = tier.cache().counters();
        assert!(c.hits >= plans.len() as u64, "{:?}", cfg.dataset);
        assert_eq!(c.misses, seen.len() as u64);
        assert_eq!(c.stale_drops, 0);
    }
}

/// `serve_batch` coalesces misses through one probe fan-out yet returns
/// byte-for-byte what per-plan matching returns — with repeats inside
/// the batch, fully cold batches, fully warm batches, and mixtures.
#[test]
fn serve_batch_equals_uncached_match() {
    let w = quirky_workload("serve_batch_diff");
    let kb = KnowledgeBase::new();
    learn_workload(&w, &kb, &fast_learning());
    let plans = plans_of(&w);
    let cfg = MatchConfig::default();
    let fresh: Vec<MatchReport> = plans
        .iter()
        .map(|p| match_plan(&w.db, &kb, p, &cfg))
        .collect();

    let tier = ServingTier::new(&w.db, &kb, cfg.clone());
    // Cold batch with in-batch repeats: [0, 1, 0, 2, 1, 3, 4].
    let order = [0usize, 1, 0, 2, 1, 3, 4];
    let batch: Vec<&Qgm> = order.iter().map(|&i| &plans[i]).collect();
    let served = tier.serve_batch(&batch);
    assert_eq!(served.len(), order.len());
    for (slot, &i) in order.iter().enumerate() {
        assert_reports_equal(
            &served[slot].report,
            &fresh[i],
            &format!("cold batch slot {slot} -> plan {i}"),
        );
        assert!(served[slot].epoch.is_some(), "quiescent KB: validated");
    }
    // Duplicate slots: at most one per fingerprint misses; the cache
    // answers the rest by the end of the batch or they are coalesced.
    // Either way the reports agree — already asserted. Now the whole
    // batch is warm:
    let warm = tier.serve_batch(&batch);
    for (slot, &i) in order.iter().enumerate() {
        assert!(
            warm[slot].report.cache_hit,
            "warm batch slot {slot} must hit"
        );
        assert_reports_equal(&warm[slot].report, &fresh[i], &format!("warm slot {slot}"));
    }
    // A mixed batch (warm plan 0, cold tier for plan 4 via a fresh tier)
    // still agrees everywhere.
    let tier2 = ServingTier::new(&w.db, &kb, cfg.clone());
    let _ = tier2.serve(&plans[0]);
    let mixed: Vec<&Qgm> = vec![&plans[0], &plans[4], &plans[0]];
    let outcomes = tier2.serve_batch(&mixed);
    assert!(outcomes[0].report.cache_hit);
    assert_reports_equal(&outcomes[0].report, &fresh[0], "mixed hit");
    assert_reports_equal(&outcomes[1].report, &fresh[4], "mixed miss");
    assert_reports_equal(&outcomes[2].report, &fresh[0], "mixed repeat");
    assert!(tier2.cache().counters().hits >= 2);
}

// ------------------------------------------------------- epoch invalidation --

/// Every KB mutator that can change a match result must invalidate the
/// cache: after each, the tier re-matches (no hit) and agrees with the
/// uncached matcher against the new state.
#[test]
fn every_mutator_invalidates_cached_outcomes() {
    let w = quirky_workload("serve_inval");
    let kb = KnowledgeBase::new();
    learn_workload(&w, &kb, &fast_learning());
    let plans = plans_of(&w);
    let cfg = MatchConfig::default();
    let tier = ServingTier::new(&w.db, &kb, cfg.clone());
    let plan = &plans[0];

    let serve_expecting = |hit: bool, context: &str| -> ServeOutcome {
        let outcome = tier.serve(plan);
        assert_eq!(outcome.report.cache_hit, hit, "{context}");
        assert!(outcome.epoch.is_some(), "quiescent KB: {context}");
        let fresh = match_plan(&w.db, &kb, plan, &cfg);
        assert_reports_equal(&outcome.report, &fresh, context);
        outcome
    };

    serve_expecting(false, "initial miss");
    let baseline = serve_expecting(true, "initial hit");
    assert!(
        !baseline.report.rewrites.is_empty(),
        "the learned template must match"
    );
    let winner = baseline.report.rewrites[0].template_iri.clone();

    // insert: a smaller-IRI template that admits the same plan changes
    // the deterministic winner — serving the old winner would be stale.
    let g = GuidelineDoc::new(vec![guideline_from_plan(plan, plan.root()).unwrap()]);
    let mut rival = abstract_plan(&w.db, plan, plan.root(), &g, "000_rival".into());
    rival.source_workload = "rival".into();
    kb.insert(&rival);
    let rival_iri = vocab::template_iri("000_rival").str_value().to_string();
    assert!(rival_iri < winner, "rival must sort first: {rival_iri}");
    let after_insert = serve_expecting(false, "after insert");
    serve_expecting(true, "re-cached after insert");
    assert_eq!(
        after_insert.report.rewrites[0].template_iri, rival_iri,
        "the new winner must be served immediately"
    );

    // remove_template: deleting the rival restores the old winner.
    assert!(kb.remove_template(&rival_iri));
    let after_remove = serve_expecting(false, "after remove");
    serve_expecting(true, "re-cached after remove");
    assert_eq!(after_remove.report.rewrites[0].template_iri, winner);

    // reindex: same triples, but cached outcomes must still drop (the
    // index may have been rebuilt because raw triples changed).
    kb.reindex();
    serve_expecting(false, "after reindex");
    serve_expecting(true, "re-cached after reindex");

    // import: replaces the whole image.
    let image = kb.export();
    kb.import(&image).unwrap();
    serve_expecting(false, "after import");
    serve_expecting(true, "re-cached after import");

    // clear: the served report must be empty, not yesterday's match.
    kb.clear();
    let cleared = serve_expecting(false, "after clear");
    assert!(
        cleared.report.rewrites.is_empty(),
        "cleared KB matches nothing"
    );
    serve_expecting(true, "re-cached after clear");

    assert!(
        tier.cache().counters().stale_drops >= 4,
        "each mutation dropped"
    );
}

/// A no-op mutation (re-publishing templates the KB already holds) does
/// not advance the epoch, so cached outcomes stay servable.
#[test]
fn noop_republish_preserves_cache_hits() {
    let w = quirky_workload("serve_noop");
    let kb = KnowledgeBase::new();
    learn_workload(&w, &kb, &fast_learning());
    let plans = plans_of(&w);
    let cfg = MatchConfig::default();
    let tier = ServingTier::new(&w.db, &kb, cfg.clone());
    let _ = tier.serve(&plans[0]);
    let e = kb.epoch();

    // Re-import the KB's own image: set semantics make it a no-op.
    // (kb.import is NOT a no-op — it clears first — so use the
    // template-level republish path, which is.)
    let hit = tier.serve(&plans[0]);
    assert!(hit.report.cache_hit);
    assert_eq!(kb.epoch(), e, "no mutation happened");
    assert_eq!(hit.epoch, Some(e));
}

// ----------------------------------------------------------------- stress --

/// Four learner nodes publish into the KB while a serving thread loops
/// the workload's plans through the cache. Pinned: a validated outcome
/// (epoch `Some(e)`) compared against an uncached `match_plan` whose own
/// run is bracketed by two reads of epoch `e` must be identical — that
/// is "no stale result at the served epoch". After the cluster quiesces,
/// every serve must agree with fresh matching and the second pass must
/// be all cache hits.
#[test]
fn stress_serving_under_concurrent_publishes_is_never_stale() {
    let w = quirky_workload("serve_stress");
    let kb = KnowledgeBase::new();
    let plans = plans_of(&w);
    let cfg = MatchConfig::default();
    let tier = ServingTier::new(&w.db, &kb, cfg.clone());

    let done = AtomicBool::new(false);
    let validated_comparisons = AtomicUsize::new(0);
    let served_rounds = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let kb_ref = &kb;
        let tier = &tier;
        let plans = &plans;
        let db = &w.db;
        let cfg = &cfg;
        let done = &done;
        let validated_comparisons = &validated_comparisons;
        let served_rounds = &served_rounds;
        scope.spawn(move || {
            loop {
                let stop_after = done.load(Ordering::Acquire);
                for (i, plan) in plans.iter().enumerate() {
                    let outcome = tier.serve(plan);
                    let Some(e) = outcome.epoch else { continue };
                    // Pin the differential to the served epoch: only a
                    // fresh match provably run at epoch `e` (both even
                    // reads equal) is a valid oracle for this outcome.
                    let e1 = kb_ref.epoch();
                    if e1 != e {
                        continue;
                    }
                    let fresh = match_plan(db, kb_ref, plan, cfg);
                    if kb_ref.epoch() != e {
                        continue;
                    }
                    assert_reports_equal(
                        &outcome.report,
                        &fresh,
                        &format!("stress plan {i} at epoch {e}"),
                    );
                    validated_comparisons.fetch_add(1, Ordering::Relaxed);
                }
                served_rounds.fetch_add(1, Ordering::Relaxed);
                if stop_after {
                    break;
                }
            }
        });
        // Four nodes, publish batch 1: maximal publish interleaving.
        learn_workload_cluster(
            &w,
            &kb,
            &ClusterConfig {
                nodes: 4,
                publish_batch: 1,
                learning: fast_learning(),
            },
        );
        done.store(true, Ordering::Release);
    });
    assert!(served_rounds.load(Ordering::Relaxed) >= 2);
    assert!(
        validated_comparisons.load(Ordering::Relaxed) >= 1,
        "the pinned differential must have fired at least once"
    );

    // Quiescent phase: every serve agrees with fresh matching, then the
    // re-serve is a pure cache hit — and still agrees. The cluster's
    // last publish changed the winner set relative to the early rounds,
    // so a stale entry would be caught here.
    let mut matched = 0;
    for plan in &plans {
        let fresh = match_plan(&w.db, &kb, plan, &cfg);
        let outcome = tier.serve(plan);
        assert_eq!(outcome.epoch, Some(kb.epoch()));
        assert_reports_equal(&outcome.report, &fresh, "quiescent serve");
        let hit = tier.serve(plan);
        assert!(hit.report.cache_hit, "quiescent re-serve must hit");
        assert_reports_equal(&hit.report, &fresh, "quiescent hit");
        matched += usize::from(!fresh.rewrites.is_empty());
    }
    assert!(matched >= 1, "the learned KB must match something");
}

// ------------------------------------------------------- batched admission --

/// Producers push plan indices through the bounded queue; a consumer
/// drains batches into `serve_batch`. Every submitted plan is served
/// exactly once and every report equals the uncached oracle.
#[test]
fn admission_queue_feeds_serve_batch() {
    let w = quirky_workload("serve_admission");
    let kb = KnowledgeBase::new();
    learn_workload(&w, &kb, &fast_learning());
    let plans = plans_of(&w);
    let cfg = MatchConfig::default();
    let fresh: Vec<MatchReport> = plans
        .iter()
        .map(|p| match_plan(&w.db, &kb, p, &cfg))
        .collect();
    let tier = ServingTier::with_cache(&w.db, &kb, cfg.clone(), ProbeCache::new(4, 16));

    let queue: Arc<AdmissionQueue<usize>> = Arc::new(AdmissionQueue::new(4));
    const PER_PRODUCER: usize = 40;
    let mut served: Vec<usize> = Vec::new();
    std::thread::scope(|scope| {
        let consumer = {
            let queue = Arc::clone(&queue);
            let tier = &tier;
            let plans = &plans;
            scope.spawn(move || {
                let mut seen: Vec<usize> = Vec::new();
                loop {
                    let batch = queue.drain_batch(8);
                    if batch.is_empty() {
                        // Closed and drained: the consumer's shutdown.
                        return seen;
                    }
                    let refs: Vec<&Qgm> = batch.iter().map(|&i| &plans[i]).collect();
                    let outcomes = tier.serve_batch(&refs);
                    assert_eq!(outcomes.len(), batch.len());
                    for (&i, outcome) in batch.iter().zip(&outcomes) {
                        assert!(outcome.epoch.is_some(), "quiescent KB: validated");
                        seen.push(i);
                    }
                }
            })
        };
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let queue = Arc::clone(&queue);
                let n_plans = plans.len();
                scope.spawn(move || {
                    for k in 0..PER_PRODUCER {
                        // A repeat-heavy stream: mostly plans 0/1 with
                        // the tail cycling — what the cache is for. The
                        // tiny capacity (4) forces real back-pressure.
                        let idx = if k % 4 < 2 { k % 2 } else { (p + k) % n_plans };
                        queue.push(idx).expect("queue closed early");
                    }
                })
            })
            .collect();
        for handle in producers {
            handle.join().unwrap();
        }
        // All pushes have landed (push blocks until admitted); closing
        // now lets the consumer drain the leftovers and exit.
        queue.close();
        served = consumer.join().unwrap();
    });
    let total = 3 * PER_PRODUCER;
    assert_eq!(served.len(), total, "every submitted plan served once");
    // Differential: re-serve each distinct plan and compare to fresh.
    for (i, f) in fresh.iter().enumerate() {
        let outcome = tier.serve(&plans[i]);
        assert_reports_equal(&outcome.report, f, &format!("post-queue plan {i}"));
    }
    let c = tier.cache().counters();
    assert!(
        c.hits as usize >= total / 2,
        "repeat-heavy stream must mostly hit: {c:?}"
    );
}
