//! Integration pins on the quantile-sketch statistics substrate: the
//! trim-0 admission pre-check must agree exactly with an independent
//! min/max oracle (and never prune a template the text pipeline
//! matches), nonzero trim must lose zero true matches while pruning
//! polluted probes, and the sketches themselves — not just their
//! min/max envelopes — must survive `export`/`import`, a sharded
//! durable reopen, and an explicit `reindex`.

use galo_bench::{inflate_kb_polluted, learning_config};
use galo_core::{
    abstract_plan, learn_workload, match_plan, match_plan_text, segment_pop_checks, vocab,
    AdmissionQuery, KnowledgeBase, MatchConfig, PopCheck, StatSketch, Template,
};
use galo_optimizer::Optimizer;
use galo_qgm::{guideline_from_plan, segments, shape_signature, GuidelineDoc};
use galo_rdf::ScratchDir;
use galo_workloads::tpcds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact-bounds admission of one value, recomputed straight from the
/// sketch's stored min/max and widen factor — deliberately *not* via
/// `envelope(0.0)`, so it is an independent oracle for the index path.
fn exact_admits(s: &StatSketch, v: f64, m: f64) -> bool {
    let w = s.widen_factor();
    s.min() / w <= v * m && s.max() * w >= v / m
}

/// The admission semantics re-derived from the public `Template` alone:
/// per check, some same-typed operator must admit the cardinality and
/// (for scans) all three scan stats simultaneously.
fn oracle_admits(tpl: &Template, checks: &[PopCheck], margin: f64) -> bool {
    let m = margin.max(1.0);
    checks.iter().all(|check| {
        tpl.pops.iter().any(|p| {
            if p.pop_type != check.pop_type || !exact_admits(&p.cardinality, check.est_card, m) {
                return false;
            }
            match (&check.scan, &p.scan) {
                (Some(sc), Some(ps)) => {
                    exact_admits(&ps.row_size, sc.row_size, m)
                        && exact_admits(&ps.fpages, sc.fpages, m)
                        && exact_admits(&ps.base_cardinality, sc.base_cardinality, m)
                }
                _ => true,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At trim 0 the signature index admits exactly the templates the
    /// min/max oracle admits, and the probe pipeline (which runs behind
    /// the pre-check) still agrees with the text pipeline (which does
    /// not): the pre-check is a pure necessary condition.
    #[test]
    fn trim_zero_admission_equals_exact_minmax_oracle(
        qi in 0usize..10,
        seed in 0u64..500,
        margin_tenths in 10u64..30,
        displace in prop::bool::ANY,
    ) {
        let w = tpcds::workload();
        let q = &w.queries[qi];
        let optimizer = Optimizer::new(&w.db);
        let plan = optimizer.optimize(q).expect("workload query plans");
        let gen = optimizer.random_plans(q);
        let mut rng = StdRng::seed_from_u64(seed);

        // Templates from random alternatives of the same query plus one
        // from the plan itself; optionally displace one out of range.
        let kb = KnowledgeBase::new();
        let mut stored: Vec<(String, Template)> = Vec::new();
        let mut sources = gen.generate_distinct(3, &mut rng);
        sources.push(plan.clone());
        for (i, src) in sources.iter().enumerate() {
            let Some(g) = guideline_from_plan(src, src.root()) else { continue };
            let doc = GuidelineDoc::new(vec![g]);
            let mut tpl = abstract_plan(&w.db, src, src.root(), &doc, kb.fresh_id(i as u64));
            for p in &mut tpl.pops {
                p.cardinality.set_widen(1.5);
                if displace && i == 0 {
                    let r = p.cardinality.envelope(0.0);
                    p.cardinality = StatSketch::from_range(r.lo * 1.0e6, r.hi * 1.0e6);
                }
            }
            tpl.source_workload = "prop".into();
            kb.insert(&tpl);
            stored.push((vocab::template_iri(&tpl.id).str_value().to_string(), tpl));
        }

        let margin = margin_tenths as f64 / 10.0;
        let cfg = MatchConfig { range_margin: margin, ..MatchConfig::default() };
        for seg in segments(&plan, cfg.join_threshold) {
            let checks = segment_pop_checks(&w.db, &plan, seg.root);
            let sig = shape_signature(seg.join_count, checks.iter().map(|c| c.pop_type));
            let admitted =
                kb.candidate_templates_admitting(sig, &AdmissionQuery::exact(&checks, margin));
            let mut oracle: Vec<String> = stored
                .iter()
                .filter(|(_, t)| {
                    KnowledgeBase::template_signature(t) == sig
                        && oracle_admits(t, &checks, margin)
                })
                .map(|(iri, _)| iri.clone())
                .collect();
            oracle.sort();
            prop_assert_eq!(admitted, oracle);
        }

        let probe = match_plan(&w.db, &kb, &plan, &cfg);
        let text = match_plan_text(&w.db, &kb, &plan, &cfg);
        prop_assert_eq!(probe.rewrites.len(), text.rewrites.len());
        for (a, b) in probe.rewrites.iter().zip(&text.rewrites) {
            prop_assert_eq!(&a.template_iri, &b.template_iri);
            prop_assert_eq!(a.segment_op_id, b.segment_op_id);
        }
    }
}

/// The nonzero-trim differential on a learned-and-polluted knowledge
/// base: every rewrite found at trim 0 is found at trim 0.05 (zero lost
/// true matches), while the trimmed pre-check converts polluted probe
/// evaluations into index rejections.
#[test]
fn trimmed_admission_loses_no_matches_and_prunes_pollution() {
    let w = tpcds::workload();
    let kb = KnowledgeBase::new();
    let small = galo_workloads::Workload {
        name: w.name.clone(),
        db: w.db.clone(),
        queries: w.queries[..8].to_vec(),
    };
    learn_workload(&small, &kb, &learning_config(true));
    let pollution = inflate_kb_polluted(&kb, &w.db, &w.queries[..4], 400);
    assert!(
        pollution.card_polluted + pollution.scan_polluted > 0,
        "the inflation must plant polluted templates for the differential to exercise"
    );

    let optimizer = Optimizer::new(&w.db);
    let exact = MatchConfig::default();
    let trimmed = MatchConfig {
        sketch_trim: 0.05,
        ..MatchConfig::default()
    };
    let mut matched = 0usize;
    let mut pruned = 0usize;
    for q in &w.queries[..10] {
        let plan = optimizer.optimize(q).expect("workload query plans");
        let a = match_plan(&w.db, &kb, &plan, &exact);
        let b = match_plan(&w.db, &kb, &plan, &trimmed);
        assert_eq!(
            a.rewrites.len(),
            b.rewrites.len(),
            "lost a match at trim 0.05"
        );
        for (x, y) in a.rewrites.iter().zip(&b.rewrites) {
            assert_eq!(x.template_iri, y.template_iri);
            assert_eq!(x.segment_op_id, y.segment_op_id);
            assert_eq!(x.guideline, y.guideline);
        }
        matched += a.rewrites.len();
        assert!(b.probes_executed <= a.probes_executed);
        pruned += a.probes_executed - b.probes_executed;
    }
    assert!(
        matched > 0,
        "learned templates must match their own workload"
    );
    assert!(
        pruned > 0,
        "trimming must prune at least one polluted probe"
    );
}

/// A heavy-tailed sketch: 50 observations at `lo`, one outlier at `hi`.
/// Its exact envelope reaches the outlier; a 5% trim drops it (weight 1
/// < 0.05 · 51).
fn covering(lo: f64, hi: f64) -> StatSketch {
    let mut s = StatSketch::new();
    for _ in 0..50 {
        s.observe(lo);
    }
    s.observe(hi);
    s
}

/// The behavioral probe that distinguishes a surviving *sketch* from a
/// min/max-only fallback: exact admission accepts the outlier value,
/// trimmed admission rejects it. If only the bounds survived a
/// round-trip, the trimmed envelope would collapse to the exact one and
/// the rejection would disappear.
fn assert_sketch_behavior(kb: &KnowledgeBase, sig: u64, iri: &str, checks: &[PopCheck]) {
    let admitted = kb.candidate_templates_admitting(sig, &AdmissionQuery::exact(checks, 1.0));
    assert!(
        admitted.contains(&iri.to_string()),
        "exact bounds must admit the outlier check"
    );
    let trimmed = AdmissionQuery {
        checks,
        margin: 1.0,
        trim: 0.05,
        dataset: None,
        near_factor: 1.0,
    };
    assert!(
        !kb.candidate_templates_admitting(sig, &trimmed)
            .contains(&iri.to_string()),
        "trimmed envelope must drop the outlier — the full sketch survived, not just min/max"
    );
}

/// Sketch triples survive `export` → `import`, a sharded durable
/// reopen, and an explicit `reindex` — pinned behaviorally via the
/// trimmed-rejection probe at every step.
#[test]
fn sketches_survive_import_sharded_reopen_and_reindex() {
    let w = tpcds::workload();
    let optimizer = Optimizer::new(&w.db);
    let plan = optimizer
        .optimize(&w.queries[0])
        .expect("workload query plans");
    let kb_mem = KnowledgeBase::new();
    let g = GuidelineDoc::new(vec![guideline_from_plan(&plan, plan.root()).unwrap()]);
    let mut tpl = abstract_plan(&w.db, &plan, plan.root(), &g, kb_mem.fresh_id(3));
    let outlier = 9.0e9;
    tpl.pops[0].cardinality = covering(10.0, outlier);
    tpl.source_workload = "tpcds".into();
    kb_mem.insert(&tpl);

    let sig = KnowledgeBase::template_signature(&tpl);
    let iri = vocab::template_iri(&tpl.id).str_value().to_string();
    // The plan's own checks, with the root operator's cardinality moved
    // to the outlier: template pops and segment checks share the same
    // pre-order, so checks[0] is the covered operator.
    let mut checks = segment_pop_checks(&w.db, &plan, plan.root());
    checks[0].est_card = outlier;
    assert_sketch_behavior(&kb_mem, sig, &iri, &checks);

    let dump = kb_mem.export();
    assert!(
        dump.contains(vocab::HAS_CARDINALITY_SKETCH),
        "the export must carry the sketch triples"
    );

    let dir = ScratchDir::new("stats-sharded");
    {
        let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
        kb.import(&dump).unwrap();
        assert_sketch_behavior(&kb, sig, &iri, &checks);
    }
    // A fresh process: sharded recovery rebuilds the index from disk.
    let kb = KnowledgeBase::open_sharded_durable(dir.path(), 4).unwrap();
    assert_eq!(kb.template_count(), 1);
    assert_sketch_behavior(&kb, sig, &iri, &checks);
    // An explicit reindex keeps the sketch-backed envelopes.
    kb.reindex();
    assert_sketch_behavior(&kb, sig, &iri, &checks);
    assert_eq!(kb.export(), dump);
}
